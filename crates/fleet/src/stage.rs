//! The shared, deterministic, cross-shard RACH resolution stage.
//!
//! PR 3's `tests/shard_approximation.rs` measured the cost of resolving
//! PRACH contention per shard: 8-shard collision rates read ≈ 0 where the
//! exact 1-shard run reads ≈ 8%, because two UEs in different shards can
//! never collide. Contention at a shared resource cannot be sampled
//! per-partition — it has to be resolved globally. This module is that
//! global resolution point.
//!
//! ## Execution model
//!
//! Shards advance independently between PRACH occasions; every
//! [`epoch`](SharedRachStage::epoch) (the minimum BS response delay) is a
//! synchronization barrier. During an epoch a shard does not feed
//! BS-bound RACH PDUs to a local responder — it publishes them as
//! [`RachAttemptMsg`]s into its worker's mailbox. At the barrier the
//! mailboxes are merged into the stage's holding buffer and every attempt
//! whose arrival instant lies at or before the barrier horizon is
//! resolved, in **canonical order** — arrival instant, then global UE id
//! — against one [`RachResponder`] per cell. Replies fan back to the
//! owning shards as [`RachReply`]s, timestamped strictly beyond the
//! horizon (the epoch length is chosen to guarantee it), so delivery
//! never has to rewind a shard.
//!
//! Because the barrier instants are global constants of the config and
//! the resolution order is canonical, the outcome is byte-identical
//! regardless of shard count, worker count, worker scheduling or mailbox
//! arrival interleaving — `tests/shard_approximation.rs` now asserts the
//! 1-shard/8-shard *equality* this buys, not a bias bound.
//!
//! ## Why the epoch length is safe
//!
//! An attempt created by a shard event at time `u` arrives at the BS at
//! `u + AIR_DELAY > u`, so every attempt with `at ≤ horizon` has been
//! published once all shards have run through `horizon`. A resolved
//! attempt's reply is delayed by at least `min(rar_delay, msg4_delay)`,
//! and any attempt resolved at this barrier has `at >` the *previous*
//! horizon, so its reply lands strictly after the current horizon: always
//! in the receiving shard's future.
//!
//! ## Zero allocation in steady state
//!
//! The holding buffer, per-occasion batch scratch and reply routing are
//! all capacity-retaining (`Vec::clear`/`drain`, in-place
//! `sort_unstable`), pre-sized by [`SharedRachStage::new`] — resolving
//! occasions allocates nothing once warm (asserted by
//! `tests/zero_alloc.rs`).

use std::collections::BTreeMap;

use st_des::{SimDuration, SimTime};
use st_mac::pdu::{Pdu, UeId};
use st_mac::responder::{PreambleRx, RachResponder, RarPlan, ResponderConfig, ResponderStats};
use st_mac::timing::TxBeamIndex;

/// The BS-bound payload of one published attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum RachReq {
    /// Msg1 — one preamble transmission that survived the air.
    Preamble {
        preamble: u8,
        ssb_beam: TxBeamIndex,
        /// UE–cell distance at the arrival instant (timing advance).
        distance_m: f64,
    },
    /// Msg3 — a connection request under the temporary id the UE holds.
    Msg3 {
        temp: Option<UeId>,
        ue: UeId,
        context_token: u64,
        /// SSB beam the Msg4 reply transmits on (captured at send time).
        reply_tx_beam: TxBeamIndex,
    },
}

impl RachReq {
    /// Canonical tie-break between a same-instant Msg1 and Msg3 of one
    /// UE (the two kinds never interact through the pending table at the
    /// same instant, but the order must still be fixed).
    fn kind_rank(&self) -> u8 {
        match self {
            RachReq::Preamble { .. } => 0,
            RachReq::Msg3 { .. } => 1,
        }
    }
}

/// One RACH PDU published by a shard for global resolution.
#[derive(Debug, Clone, PartialEq)]
pub struct RachAttemptMsg {
    /// Arrival instant at the BS (send + air delay).
    pub at: SimTime,
    /// Global UE id — the canonical tie-break, stable across shardings.
    pub ue_global: u64,
    /// Owning shard at publish time, for reply routing. Replies carry the
    /// global UE id, not a local index — local indices shift when *other*
    /// UEs migrate between publish and delivery.
    pub shard: u32,
    pub cell: u16,
    pub req: RachReq,
}

/// A resolved reply, routed back to the owning shard. The shard delivers
/// it as a plain `UeRx` event at `deliver_at` — from the UE's point of
/// view nothing distinguishes the shared stage from a local responder.
#[derive(Debug, Clone, PartialEq)]
pub struct RachReply {
    pub deliver_at: SimTime,
    /// Global UE id — the shard resolves it to a local index at delivery
    /// time (binary search on its id-sorted UE vector), so replies stay
    /// valid across migrations that reshuffle local indices.
    pub ue_global: u64,
    pub cell: u16,
    pub tx_beam: TxBeamIndex,
    pub pdu: Pdu,
    /// Backhaul time (queue wait + context fetch) embedded in the Msg4
    /// delay, in nanos — zero for RAR replies. Carried so the owning
    /// shard can charge the backhaul phase in causal attribution.
    pub backhaul_ns: u64,
}

/// Deterministic, stage-level counters (all functions of the canonical
/// attempt sequence — safe to compare across worker counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageCounters {
    /// Preambles resolved through the merged path.
    pub resolved_preambles: u64,
    /// Msg3s resolved through the merged path.
    pub resolved_msg3: u64,
    /// Barrier passes in which at least one attempt resolved.
    pub busy_barriers: u64,
}

/// Responder-side counter deltas the stage attributes to one base
/// snapshot interval (exact-contention runs only): in exact mode the
/// per-shard responders are idle, so the timeline's responder-side
/// fields have to come from here. The attribution is canonical —
/// interval index = attempt instant ÷ base interval — so it is
/// identical across worker and shard counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageSliceDelta {
    pub preambles_heard: u64,
    pub collisions: u64,
    pub contention_losses: u64,
    pub backhaul_wait_us: u64,
}

/// The shared cross-shard responder stage: one [`RachResponder`] per
/// cell, fed the globally merged, canonically ordered attempt stream.
#[derive(Debug)]
pub struct SharedRachStage {
    responders: Vec<RachResponder>,
    /// Attempts published but not yet past the resolution horizon.
    holding: Vec<RachAttemptMsg>,
    /// Per-occasion batch scratch (one cell, one instant), and the
    /// shard/UE routing parallel to it.
    batch: Vec<PreambleRx>,
    batch_dst: Vec<(u32, u64)>,
    rar_out: Vec<Option<RarPlan>>,
    counters: StageCounters,
    min_reply_delay: SimDuration,
    /// Snapshot-slice attribution ([`SharedRachStage::arm_slices`]):
    /// base interval and per-interval counter deltas, keyed by interval
    /// index.
    slice_dt: Option<SimDuration>,
    slice_deltas: BTreeMap<u64, StageSliceDelta>,
}

impl SharedRachStage {
    /// `expected_inflight` pre-sizes every buffer (a UE has at most one
    /// Msg1 and one Msg3 in flight, so the UE count is a safe ceiling).
    pub fn new(
        n_cells: usize,
        config: ResponderConfig,
        expected_inflight: usize,
    ) -> SharedRachStage {
        let cap = expected_inflight.max(16) * 2;
        SharedRachStage {
            responders: (0..n_cells).map(|_| RachResponder::new(config)).collect(),
            holding: Vec::with_capacity(cap),
            batch: Vec::with_capacity(cap),
            batch_dst: Vec::with_capacity(cap),
            rar_out: Vec::with_capacity(cap),
            counters: StageCounters::default(),
            min_reply_delay: config.rar_delay.min(config.msg4_delay),
            slice_dt: None,
            slice_deltas: BTreeMap::new(),
        }
    }

    /// Attribute responder-side counter changes to snapshot intervals of
    /// width `dt` (the fleet's base snapshot interval). Call before the
    /// first barrier; the per-interval deltas are read back with
    /// [`SharedRachStage::slice_deltas`] and merged into the shard
    /// timeline as a pseudo-shard.
    pub fn arm_slices(&mut self, dt: SimDuration) {
        assert!(dt.as_nanos() > 0, "snapshot interval must be positive");
        self.slice_dt = Some(dt);
    }

    /// Per-interval responder counter deltas accumulated since
    /// [`SharedRachStage::arm_slices`], keyed by interval index.
    pub fn slice_deltas(&self) -> &BTreeMap<u64, StageSliceDelta> {
        &self.slice_deltas
    }

    /// Sum of the per-cell responder counters that feed slice deltas:
    /// (preambles heard, collisions, contention losses, backhaul wait ns).
    fn stats_snapshot(&self) -> (u64, u64, u64, u64) {
        let mut s = (0u64, 0u64, 0u64, 0u64);
        for r in &self.responders {
            let st = r.stats();
            s.0 += st.preambles_heard;
            s.1 += st.collisions;
            s.2 += st.contention_losses;
            s.3 += st.backhaul_queue_wait.as_nanos();
        }
        s
    }

    /// The barrier spacing this stage is safe under: replies to attempts
    /// resolved at one barrier must land strictly beyond it, which holds
    /// for any epoch no longer than the minimum BS response delay (see
    /// module docs for the proof sketch).
    pub fn epoch(&self) -> SimDuration {
        self.min_reply_delay
    }

    /// Deterministic stage counters.
    pub fn counters(&self) -> StageCounters {
        self.counters
    }

    /// Per-cell responder statistics — reported **once** per cell by the
    /// fleet outcome (the per-shard responders are idle in exact mode).
    pub fn responder_stats(&self) -> Vec<ResponderStats> {
        self.responders.iter().map(|r| r.stats()).collect()
    }

    /// Move one mailbox's published attempts into the holding buffer.
    /// Order is irrelevant: resolution sorts canonically.
    pub fn ingest(&mut self, mailbox: &mut Vec<RachAttemptMsg>) {
        self.holding.append(mailbox);
    }

    /// Resolve every held attempt with `at ≤ horizon` in canonical
    /// order, emitting replies through `deliver(shard, reply)`. Attempts
    /// beyond the horizon stay held for a later barrier.
    pub fn resolve_up_to(&mut self, horizon: SimTime, mut deliver: impl FnMut(u32, RachReply)) {
        self.holding
            .sort_unstable_by_key(|m| (m.at.as_nanos(), m.ue_global, m.req.kind_rank(), m.cell));
        let due = self
            .holding
            .partition_point(|m| m.at.as_nanos() <= horizon.as_nanos());
        if due == 0 {
            return;
        }
        self.counters.busy_barriers += 1;

        let mut i = 0;
        while i < due {
            // One run of equal arrival instants = the PRACH occasions (and
            // stray Msg3s) landing at this instant across every cell.
            let at = self.holding[i].at;
            let mut j = i;
            while j < due && self.holding[j].at == at {
                j += 1;
            }
            // Snapshot-slice attribution brackets this instant's work.
            let before = self.slice_dt.map(|_| self.stats_snapshot());

            // Merged-occasion resolution per cell: gather the instant's
            // preambles for each cell (already in canonical UE order) and
            // resolve them in one pass.
            for cell in 0..self.responders.len() as u16 {
                self.batch.clear();
                self.batch_dst.clear();
                for m in &self.holding[i..j] {
                    if m.cell != cell {
                        continue;
                    }
                    if let RachReq::Preamble {
                        preamble,
                        ssb_beam,
                        distance_m,
                    } = m.req
                    {
                        self.batch.push(PreambleRx {
                            at: m.at,
                            ue: UeId(m.ue_global as u32 + 1),
                            preamble,
                            ssb_beam,
                            distance_m,
                        });
                        self.batch_dst.push((m.shard, m.ue_global));
                    }
                }
                if self.batch.is_empty() {
                    continue;
                }
                self.counters.resolved_preambles += self.batch.len() as u64;
                // The batch is a sub-sequence of the canonically sorted
                // holding buffer, so `resolve`'s internal canonical sort
                // is an order no-op and `batch_dst` stays aligned.
                self.responders[cell as usize].resolve(&mut self.batch, &mut self.rar_out);
                for (k, plan) in self.rar_out.iter().enumerate() {
                    let Some(plan) = plan else { continue };
                    let (shard, ue_global) = self.batch_dst[k];
                    deliver(
                        shard,
                        RachReply {
                            deliver_at: at + plan.delay,
                            ue_global,
                            cell,
                            tx_beam: plan.tx_beam,
                            pdu: plan.pdu.clone(),
                            backhaul_ns: 0,
                        },
                    );
                }
            }

            // Msg3s at this instant, in canonical UE order.
            for m in &self.holding[i..j] {
                if let RachReq::Msg3 {
                    temp,
                    ue,
                    context_token,
                    reply_tx_beam,
                } = m.req
                {
                    self.counters.resolved_msg3 += 1;
                    if let Some(plan) =
                        self.responders[m.cell as usize].on_msg3(m.at, temp, ue, context_token)
                    {
                        deliver(
                            m.shard,
                            RachReply {
                                deliver_at: m.at + plan.delay,
                                ue_global: m.ue_global,
                                cell: m.cell,
                                tx_beam: reply_tx_beam,
                                pdu: plan.pdu.clone(),
                                backhaul_ns: (plan.queue_wait + plan.fetch).as_nanos(),
                            },
                        );
                    }
                }
            }
            if let (Some(dt), Some(b)) = (self.slice_dt, before) {
                let a = self.stats_snapshot();
                let d = self
                    .slice_deltas
                    .entry(at.as_nanos() / dt.as_nanos())
                    .or_default();
                d.preambles_heard += a.0 - b.0;
                d.collisions += a.1 - b.1;
                d.contention_losses += a.2 - b.2;
                d.backhaul_wait_us += (a.3 - b.3) / 1_000;
            }
            i = j;
        }
        self.holding.drain(..due);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    fn preamble(at: SimTime, ue: u64, shard: u32, cell: u16, p: u8) -> RachAttemptMsg {
        RachAttemptMsg {
            at,
            ue_global: ue,
            shard,
            cell,
            req: RachReq::Preamble {
                preamble: p,
                ssb_beam: 1,
                distance_m: 100.0,
            },
        }
    }

    fn stage() -> SharedRachStage {
        SharedRachStage::new(2, ResponderConfig::nr_default(), 8)
    }

    #[test]
    fn cross_shard_same_preamble_collides() {
        // UE 0 (shard 0) and UE 1 (shard 1): same cell, same occasion,
        // same preamble — the collision per-shard responders cannot see.
        let mut s = stage();
        let mut mb = vec![preamble(t(500), 1, 1, 0, 3), preamble(t(500), 0, 0, 0, 3)];
        s.ingest(&mut mb);
        let mut replies: Vec<(u32, RachReply)> = Vec::new();
        s.resolve_up_to(t(2000), |shard, r| replies.push((shard, r)));
        assert_eq!(replies.len(), 2);
        // Both answered with the *same* temporary id (indistinguishable
        // at Msg1), routed to their own shards, in canonical UE order.
        assert_eq!(replies[0].0, 0);
        assert_eq!(replies[1].0, 1);
        assert_eq!(replies[0].1.pdu, replies[1].1.pdu);
        assert_eq!(s.responder_stats()[0].collisions, 1);
        assert_eq!(s.responder_stats()[1].collisions, 0);
    }

    #[test]
    fn attempts_beyond_horizon_are_held() {
        let mut s = stage();
        let mut mb = vec![preamble(t(500), 0, 0, 0, 3), preamble(t(2500), 1, 0, 0, 3)];
        s.ingest(&mut mb);
        let mut n = 0;
        s.resolve_up_to(t(2000), |_, _| n += 1);
        assert_eq!(n, 1);
        // The held attempt resolves at a later barrier.
        s.resolve_up_to(t(4000), |_, _| n += 1);
        assert_eq!(n, 2);
        assert_eq!(s.counters().resolved_preambles, 2);
    }

    #[test]
    fn mailbox_drain_order_is_invisible() {
        let attempts = [
            preamble(t(500), 0, 0, 0, 2),
            preamble(t(500), 3, 1, 0, 2),
            preamble(t(500), 5, 1, 1, 2),
            preamble(t(750), 2, 0, 0, 1),
        ];
        let run = |order: &[usize]| {
            let mut s = stage();
            for &k in order {
                let mut mb = vec![attempts[k].clone()];
                s.ingest(&mut mb);
            }
            let mut replies: Vec<(u32, RachReply)> = Vec::new();
            s.resolve_up_to(t(2000), |shard, r| replies.push((shard, r)));
            (replies, s.responder_stats())
        };
        let a = run(&[0, 1, 2, 3]);
        let b = run(&[3, 2, 1, 0]);
        let c = run(&[2, 0, 3, 1]);
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn replies_land_strictly_beyond_the_horizon() {
        let mut s = stage();
        let horizon = t(2000);
        let mut mb = vec![preamble(t(1990), 0, 0, 0, 3), preamble(t(2000), 1, 0, 1, 4)];
        s.ingest(&mut mb);
        let mut deliveries = Vec::new();
        s.resolve_up_to(horizon, |_, r| deliveries.push(r.deliver_at));
        assert_eq!(deliveries.len(), 2);
        assert!(deliveries.iter().all(|&d| d > horizon));
    }
}
