//! Declarative fleet deployments: cell layouts and heterogeneous UE
//! populations, snowcap-example-network style — a small builder that
//! assembles one validated [`FleetConfig`] the engine consumes.
//!
//! ```
//! use st_fleet::{Deployment, MobilityKind};
//! use st_net::ProtocolKind;
//!
//! let cfg = Deployment::new()
//!     .street(320.0, 30.0)
//!     .cell_row(4, 80.0)
//!     .population(24, MobilityKind::Walk, ProtocolKind::SilentTracker)
//!     .population(8, MobilityKind::Vehicular, ProtocolKind::Reactive)
//!     .duration_secs(1.0)
//!     .seed(7)
//!     .shards(2)
//!     .build()
//!     .unwrap();
//! assert_eq!(cfg.n_ues(), 32);
//! ```

use std::sync::Arc;

use rand::RngExt;
use st_des::SimDuration;
use st_env::{BlockerPopulation, DynamicEnvironment};
use st_net::config::{CellConfig, ProtocolKind, ScenarioConfig};
use st_phy::channel::Environment;
use st_phy::geometry::Vec2;

/// Which mobility model a UE runs (paper kinematics, per-UE seeded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MobilityKind {
    /// 1.4 m/s pedestrian with gait sway and yaw wobble.
    Walk,
    /// 20 mph drive along the street.
    Vehicular,
    /// Stationary with 120 °/s device rotation.
    Rotation,
    /// Walking while turning the device 90° mid-walk.
    WalkAndTurn,
}

/// A homogeneous slice of the UE population.
#[derive(Debug, Clone, Copy)]
pub struct PopulationSpec {
    pub count: u32,
    pub mobility: MobilityKind,
    pub protocol: ProtocolKind,
}

/// One UE of the flattened population.
#[derive(Debug, Clone, Copy)]
pub struct UeSpec {
    /// Global UE index (stable across shard counts).
    pub id: u64,
    pub mobility: MobilityKind,
    pub protocol: ProtocolKind,
}

impl MobilityKind {
    /// Upper bound on sustained translational speed, m/s — the travel
    /// margin used when expanding a tile's reachable-cell set.
    pub fn max_speed_mps(self) -> f64 {
        match self {
            MobilityKind::Walk | MobilityKind::WalkAndTurn => 1.4,
            MobilityKind::Vehicular => st_mobility::mph_to_mps(20.0),
            MobilityKind::Rotation => 0.0,
        }
    }
}

/// How the population is partitioned into shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardStrategy {
    /// Round-robin by global UE id: every shard sees a representative
    /// mix, but also every cell — per-UE cost is O(cells).
    #[default]
    RoundRobin,
    /// Geographic cell-cluster tiles: cells are clustered into
    /// `n_shards` contiguous groups along the street axis and each UE
    /// lives on the shard owning the tile its spawn position falls in,
    /// migrating between shards as its trajectory crosses tile
    /// boundaries. Pairs with [`FleetConfig::interest_radius_m`] so a
    /// shard only ray-traces the cells its UEs can actually hear.
    Tiles,
}

/// The geometric tile partition derived from a [`FleetConfig`] under
/// [`ShardStrategy::Tiles`]: which cells each tile owns and where the
/// tile boundaries sit on the street axis.
#[derive(Debug, Clone)]
pub struct TilePartition {
    /// Cell indices owned by each tile, ascending by street-axis
    /// position (ties broken by y then index).
    pub clusters: Vec<Vec<usize>>,
    /// `n_tiles - 1` boundary abscissae: tile `k` owns
    /// `x ∈ (boundaries[k-1], boundaries[k]]` (open-ended at the ends).
    pub boundaries: Vec<f64>,
}

impl TilePartition {
    /// The tile owning street-axis position `x`.
    pub fn tile_of_x(&self, x: f64) -> usize {
        self.boundaries.partition_point(|b| *b < x)
    }

    /// The closed x-interval tile `k` spans (unbounded ends clamped to
    /// ±`extent`).
    pub fn tile_interval(&self, k: usize, extent: f64) -> (f64, f64) {
        let lo = if k == 0 {
            -extent
        } else {
            self.boundaries[k - 1]
        };
        let hi = if k == self.boundaries.len() {
            extent
        } else {
            self.boundaries[k]
        };
        (lo, hi)
    }
}

/// Full fleet description: the shared radio/world parameters (reusing the
/// single-trial [`ScenarioConfig`] — its `protocol`, `initial_serving` and
/// `stop_at_handover` fields are per-UE concerns here and ignored) plus
/// the population mix and execution shape.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Shared world: cells, environment, radio, channel, MAC timing,
    /// tracker parameters, faults, duration, master seed.
    pub base: ScenarioConfig,
    pub populations: Vec<PopulationSpec>,
    /// Number of independent simulation shards the population is split
    /// into (fixed by config — results never depend on worker count).
    pub n_shards: usize,
    /// How UEs are assigned to shards (see [`ShardStrategy`]).
    pub shard_strategy: ShardStrategy,
    /// Interest-management radius, metres: each UE's link set is
    /// restricted to cells within this radius of its current position
    /// (its serving cell and any active RACH target are always kept).
    /// `None` (default) keeps the full link set — byte-identical to the
    /// pre-interest behaviour.
    pub interest_radius_m: Option<f64>,
    /// How often (simulated time) tile shards pause to migrate UEs whose
    /// trajectories crossed a tile boundary. Only meaningful under
    /// [`ShardStrategy::Tiles`]; under exact contention the interval is
    /// rounded up to a whole number of occasion epochs.
    pub migration_interval: SimDuration,
    /// Route all RACH traffic through the shared cross-shard responder
    /// stage: shards synchronize at PRACH-occasion barriers and each
    /// cell's occasion resolves over the globally merged attempt set, so
    /// contention is exact (byte-identical to a 1-shard run) instead of
    /// per-shard approximate. Costs barrier synchronization; off by
    /// default.
    pub exact_contention: bool,
    /// DES event budget per shard.
    pub event_budget: u64,
    /// UEs spawn uniformly over x ∈ [spawn_x.0, spawn_x.1].
    pub spawn_x: (f64, f64),
    /// …and y ∈ [spawn_y.0, spawn_y.1].
    pub spawn_y: (f64, f64),
    /// Record every UE's protocol event stream for trace replay
    /// ([`st_net::replay`]). Off by default — recording buffers the
    /// full event history in memory.
    pub record_traces: bool,
    /// Retain raw interruption sample vectors and drive aggregates from
    /// exact [`st_metrics::Ecdf`]s instead of the constant-memory
    /// [`st_metrics::QuantileSketch`]es. Off by default — opt in for
    /// figure regeneration; memory grows O(samples).
    pub exact_ecdfs: bool,
    /// Emit a time-sliced telemetry snapshot every `dt` of simulated
    /// time (the [`crate::SnapshotRing`] timeline). `None` (default)
    /// records no timeline and schedules no snapshot events.
    pub snapshot_interval: Option<SimDuration>,
}

impl FleetConfig {
    pub fn n_ues(&self) -> u64 {
        self.populations.iter().map(|p| p.count as u64).sum()
    }

    /// The flattened population in global-id order: population slices
    /// concatenated in declaration order.
    pub fn ue_specs(&self) -> Vec<UeSpec> {
        let mut specs = Vec::with_capacity(self.n_ues() as usize);
        let mut id = 0u64;
        for p in &self.populations {
            for _ in 0..p.count {
                specs.push(UeSpec {
                    id,
                    mobility: p.mobility,
                    protocol: p.protocol,
                });
                id += 1;
            }
        }
        specs
    }

    /// The whole population partitioned into its shards in one pass
    /// (index = shard). Every shard's slice is ascending by global id.
    pub fn shard_partition(&self) -> Vec<Vec<UeSpec>> {
        let mut shards: Vec<Vec<UeSpec>> = vec![Vec::new(); self.n_shards];
        match self.shard_strategy {
            ShardStrategy::RoundRobin => {
                for u in self.ue_specs() {
                    shards[(u.id as usize) % self.n_shards].push(u);
                }
            }
            ShardStrategy::Tiles => {
                let tiles = self.tiles();
                for u in self.ue_specs() {
                    shards[tiles.tile_of_x(self.spawn_x_of(u.id))].push(u);
                }
            }
        }
        shards
    }

    /// The UEs of shard `s`. Prefer [`Self::shard_partition`] when every
    /// shard is needed — this rebuilds the whole partition per call.
    pub fn shard_specs(&self, s: usize) -> Vec<UeSpec> {
        self.shard_partition().swap_remove(s)
    }

    /// The street-axis spawn abscissa of UE `id`, re-derived from the
    /// master seed. This draws the same first variate `build_mobility`
    /// draws from the UE's `"fleet-spawn"` stream, so tile assignment
    /// agrees with the position the UE actually materializes at without
    /// perturbing any stream.
    pub fn spawn_x_of(&self, id: u64) -> f64 {
        let streams = st_des::RngStreams::new(self.base.seed);
        let mut rng = streams.stream_indexed("fleet-spawn", id);
        self.spawn_x.0 + rng.random::<f64>() * (self.spawn_x.1 - self.spawn_x.0)
    }

    /// The geometric tile partition under [`ShardStrategy::Tiles`]:
    /// cells sorted along the street axis are chunked into `n_shards`
    /// contiguous near-equal clusters, and tile boundaries sit at the
    /// midpoints between adjacent clusters' facing cells. Pure config —
    /// identical on every worker.
    pub fn tiles(&self) -> TilePartition {
        let n_cells = self.base.cells.len();
        let n = self.n_shards;
        let mut order: Vec<usize> = (0..n_cells).collect();
        order.sort_by(|&a, &b| {
            let (pa, pb) = (self.base.cells[a].position, self.base.cells[b].position);
            (pa.x, pa.y, a)
                .partial_cmp(&(pb.x, pb.y, b))
                .expect("finite cell positions")
        });
        let (div, rem) = (n_cells / n, n_cells % n);
        let mut clusters = Vec::with_capacity(n);
        let mut at = 0usize;
        for k in 0..n {
            let take = div + usize::from(k < rem);
            clusters.push(order[at..at + take].to_vec());
            at += take;
        }
        let boundaries = clusters
            .windows(2)
            .map(|w| {
                let hi = self.base.cells[*w[0].last().unwrap()].position.x;
                let lo = self.base.cells[w[1][0]].position.x;
                (hi + lo) / 2.0
            })
            .collect();
        TilePartition {
            clusters,
            boundaries,
        }
    }

    /// The worst-case distance a UE can travel over the whole run, plus
    /// slack for gait sway — the margin by which a tile's reachable-cell
    /// set is expanded so deferred migrations and boundary-hugging UEs
    /// never hear a cell outside it.
    pub fn travel_margin_m(&self) -> f64 {
        let vmax = self
            .populations
            .iter()
            .map(|p| p.mobility.max_speed_mps())
            .fold(0.0, f64::max);
        vmax * self.base.duration.as_secs_f64() + 5.0
    }

    /// The cells UEs of tile `k` can ever hear: cells within
    /// `interest_radius_m + travel_margin` of the tile's x-interval,
    /// plus the tile's own cluster (a UE's serving cell is always in its
    /// link set). With no interest radius every cell is reachable.
    pub fn reachable_cells(&self, tiles: &TilePartition, k: usize) -> Vec<usize> {
        let n_cells = self.base.cells.len();
        let Some(radius) = self.interest_radius_m else {
            return (0..n_cells).collect();
        };
        let extent = self
            .base
            .cells
            .iter()
            .map(|c| c.position.x.abs())
            .fold(self.spawn_x.0.abs().max(self.spawn_x.1.abs()), f64::max)
            + radius
            + 1.0;
        let (lo, hi) = tiles.tile_interval(k, extent);
        let reach = radius + self.travel_margin_m();
        let mut cells: Vec<usize> = (0..n_cells)
            .filter(|&c| {
                let x = self.base.cells[c].position.x;
                (x - x.clamp(lo, hi)).abs() <= reach
            })
            .collect();
        for &c in &tiles.clusters[k] {
            if !cells.contains(&c) {
                cells.push(c);
            }
        }
        cells.sort_unstable();
        cells
    }

    pub fn validate(&self) -> Result<(), String> {
        self.base.validate()?;
        if self.populations.is_empty() || self.n_ues() == 0 {
            return Err("fleet needs at least one UE".into());
        }
        if self.n_shards == 0 {
            return Err("need at least one shard".into());
        }
        if self.event_budget == 0 {
            return Err("event budget must be positive".into());
        }
        if self.spawn_x.0 >= self.spawn_x.1 || self.spawn_y.0 >= self.spawn_y.1 {
            return Err("degenerate spawn region".into());
        }
        if self.n_ues() > u64::from(u32::MAX) {
            return Err("population exceeds u32 UE-id space".into());
        }
        if self.shard_strategy == ShardStrategy::Tiles {
            if self.n_shards > self.base.cells.len() {
                return Err("tile sharding needs at least one cell per shard".into());
            }
            if self.migration_interval.as_nanos() == 0 {
                return Err("migration interval must be positive".into());
            }
        }
        if self.interest_radius_m.is_some_and(|r| r <= 0.0) {
            return Err("interest radius must be positive".into());
        }
        if self.snapshot_interval.is_some_and(|dt| dt.as_nanos() == 0) {
            return Err("snapshot interval must be positive".into());
        }
        if self.record_traces && self.base.custom_ue_codebook.is_some() {
            // Replay rebuilds the codebook from the recorded
            // `BeamwidthClass`; a custom table would not round-trip.
            return Err("trace recording requires a class codebook, not a custom one".into());
        }
        Ok(())
    }
}

/// Builder for [`FleetConfig`]. Defaults mirror the paper's street-canyon
/// world (`ScenarioConfig::two_cell_edge`) with a 1-second horizon.
#[derive(Debug, Clone)]
pub struct Deployment {
    base: ScenarioConfig,
    cells_set: bool,
    populations: Vec<PopulationSpec>,
    blockers: Option<BlockerPopulation>,
    street_dims: (f64, f64),
    n_shards: usize,
    shard_strategy: ShardStrategy,
    interest_radius_m: Option<f64>,
    migration_interval: SimDuration,
    exact_contention: bool,
    event_budget: u64,
    spawn_x: Option<(f64, f64)>,
    spawn_y: (f64, f64),
    record_traces: bool,
    exact_ecdfs: bool,
    snapshot_interval: Option<SimDuration>,
}

impl Default for Deployment {
    fn default() -> Self {
        Self::new()
    }
}

impl Deployment {
    pub fn new() -> Deployment {
        let mut base = ScenarioConfig::two_cell_edge();
        base.duration = SimDuration::from_secs(1);
        base.stop_at_handover = false;
        Deployment {
            base,
            cells_set: false,
            populations: Vec::new(),
            blockers: None,
            street_dims: (200.0, 30.0),
            n_shards: 1,
            shard_strategy: ShardStrategy::RoundRobin,
            interest_radius_m: None,
            migration_interval: SimDuration::from_millis(100),
            exact_contention: false,
            event_budget: 200_000_000,
            spawn_x: None,
            spawn_y: (-3.0, 3.0),
            record_traces: false,
            exact_ecdfs: false,
            snapshot_interval: None,
        }
    }

    /// Street-canyon environment `length × width` metres, centred on the
    /// origin. Also sets the default spawn span to the inner 80%.
    pub fn street(mut self, length_m: f64, width_m: f64) -> Deployment {
        self.base.environment = Environment::street_canyon(length_m, width_m);
        self.street_dims = (length_m, width_m);
        if self.spawn_x.is_none() {
            self.spawn_x = Some((-0.4 * length_m, 0.4 * length_m));
        }
        self
    }

    /// Share a population of moving geometric blockers (crowds, cars,
    /// buses) across every UE of every shard: one bus shadows every link
    /// it crosses, which is the *correlated* blockage the per-link
    /// stochastic process cannot express. Opting in switches the
    /// stochastic blockage duty cycle off — the dynamic environment is
    /// the blockage model. Deployments without blockers are untouched.
    pub fn blockers(mut self, population: BlockerPopulation) -> Deployment {
        self.blockers = Some(population);
        self
    }

    /// A row of `n` cells spaced `spacing` metres apart along the street,
    /// alternating street sides (replaces previously declared cells).
    pub fn cell_row(mut self, n: usize, spacing: f64) -> Deployment {
        let half = (n.saturating_sub(1)) as f64 * spacing / 2.0;
        self.base.cells = (0..n)
            .map(|i| {
                let side = if i % 2 == 0 { 10.0 } else { -10.0 };
                CellConfig::at(i as f64 * spacing - half, side)
            })
            .collect();
        self.cells_set = true;
        self
    }

    /// Add one cell at an explicit position (replaces the default two-cell
    /// layout on first use).
    pub fn cell_at(mut self, x: f64, y: f64) -> Deployment {
        if !self.cells_set {
            self.base.cells.clear();
            self.cells_set = true;
        }
        self.base.cells.push(CellConfig::at(x, y));
        self
    }

    /// Transmit beams swept per SSB burst on every cell.
    pub fn tx_beams(mut self, n: u16) -> Deployment {
        for c in &mut self.base.cells {
            c.n_tx_beams = n;
        }
        self
    }

    /// Add a population slice.
    pub fn population(
        mut self,
        count: u32,
        mobility: MobilityKind,
        protocol: ProtocolKind,
    ) -> Deployment {
        self.populations.push(PopulationSpec {
            count,
            mobility,
            protocol,
        });
        self
    }

    pub fn duration(mut self, d: SimDuration) -> Deployment {
        self.base.duration = d;
        self
    }

    pub fn duration_secs(self, s: f64) -> Deployment {
        self.duration(SimDuration::from_secs_f64(s))
    }

    pub fn seed(mut self, seed: u64) -> Deployment {
        self.base.seed = seed;
        self
    }

    pub fn shards(mut self, n: usize) -> Deployment {
        self.n_shards = n;
        self
    }

    /// Select the shard-assignment strategy (see [`ShardStrategy`]).
    pub fn shard_strategy(mut self, s: ShardStrategy) -> Deployment {
        self.shard_strategy = s;
        self
    }

    /// Shard by geographic cell-cluster tiles
    /// ([`ShardStrategy::Tiles`]).
    pub fn tile_sharding(self) -> Deployment {
        self.shard_strategy(ShardStrategy::Tiles)
    }

    /// Restrict each UE's link set to cells within `m` metres (see
    /// [`FleetConfig::interest_radius_m`]).
    pub fn interest_radius(mut self, m: f64) -> Deployment {
        self.interest_radius_m = Some(m);
        self
    }

    /// How often tile shards pause to migrate boundary-crossing UEs
    /// (see [`FleetConfig::migration_interval`]).
    pub fn migration_interval_secs(mut self, s: f64) -> Deployment {
        self.migration_interval = SimDuration::from_secs_f64(s);
        self
    }

    /// Arm the shared cross-shard RACH responder stage (exact global
    /// contention; see [`FleetConfig::exact_contention`]).
    pub fn exact_contention(mut self, on: bool) -> Deployment {
        self.exact_contention = on;
        self
    }

    pub fn event_budget(mut self, budget: u64) -> Deployment {
        self.event_budget = budget;
        self
    }

    /// Record every UE's protocol event stream for trace replay (see
    /// [`FleetConfig::record_traces`]).
    pub fn record_traces(mut self, on: bool) -> Deployment {
        self.record_traces = on;
        self
    }

    /// Retain raw interruption samples and drive aggregates from exact
    /// ECDFs instead of sketches (see [`FleetConfig::exact_ecdfs`]).
    pub fn exact_ecdfs(mut self, on: bool) -> Deployment {
        self.exact_ecdfs = on;
        self
    }

    /// Emit a telemetry snapshot slice every `dt` of simulated time
    /// (see [`FleetConfig::snapshot_interval`]).
    pub fn snapshot_interval(mut self, dt: SimDuration) -> Deployment {
        self.snapshot_interval = Some(dt);
        self
    }

    /// [`Self::snapshot_interval`] in seconds.
    pub fn snapshot_interval_secs(self, s: f64) -> Deployment {
        self.snapshot_interval(SimDuration::from_secs_f64(s))
    }

    /// Override the UE spawn region.
    pub fn spawn_region(mut self, x: (f64, f64), y: (f64, f64)) -> Deployment {
        self.spawn_x = Some(x);
        self.spawn_y = y;
        self
    }

    /// Fewer contention preambles per occasion (raises collision pressure
    /// for load studies).
    pub fn prach_preambles(mut self, n: u8) -> Deployment {
        self.base.prach.n_preambles = n;
        self
    }

    pub fn build(self) -> Result<FleetConfig, String> {
        let spawn_x = self.spawn_x.unwrap_or((-80.0, 80.0));
        let mut base = self.base;
        if let Some(pop) = self.blockers {
            let (length, width) = self.street_dims;
            // `set_dynamics` also disarms the stochastic blockage duty
            // cycle — geometric occlusion is the blockage model now.
            base.set_dynamics(Arc::new(DynamicEnvironment::new(
                base.environment.clone(),
                pop.materialize(length, width),
                base.channel.carrier,
                base.duration.as_secs_f64(),
            )));
        }
        let cfg = FleetConfig {
            base,
            populations: self.populations,
            n_shards: self.n_shards,
            shard_strategy: self.shard_strategy,
            interest_radius_m: self.interest_radius_m,
            migration_interval: self.migration_interval,
            exact_contention: self.exact_contention,
            event_budget: self.event_budget,
            spawn_x,
            spawn_y: self.spawn_y,
            record_traces: self.record_traces,
            exact_ecdfs: self.exact_ecdfs,
            snapshot_interval: self.snapshot_interval,
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

/// Nearest cell to a position — the cell a freshly spawned UE is attached
/// to (it completed initial access before the fleet run starts).
pub fn nearest_cell(cells: &[CellConfig], p: Vec2) -> usize {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in cells.iter().enumerate() {
        let d = c.position.distance(p);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FleetConfig {
        Deployment::new()
            .street(320.0, 30.0)
            .cell_row(4, 80.0)
            .population(6, MobilityKind::Walk, ProtocolKind::SilentTracker)
            .population(2, MobilityKind::Vehicular, ProtocolKind::Reactive)
            .shards(2)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_assembles_valid_config() {
        let cfg = small();
        assert_eq!(cfg.base.cells.len(), 4);
        assert_eq!(cfg.n_ues(), 8);
        // Cells alternate street sides around the origin.
        assert_eq!(cfg.base.cells[0].position.x, -120.0);
        assert_eq!(cfg.base.cells[1].position.y, -10.0);
    }

    #[test]
    fn ue_specs_flatten_in_declaration_order() {
        let cfg = small();
        let specs = cfg.ue_specs();
        assert_eq!(specs.len(), 8);
        assert_eq!(specs[0].mobility, MobilityKind::Walk);
        assert_eq!(specs[6].mobility, MobilityKind::Vehicular);
        assert_eq!(specs[7].protocol, ProtocolKind::Reactive);
        assert!(specs.iter().enumerate().all(|(i, s)| s.id == i as u64));
    }

    #[test]
    fn shards_partition_round_robin() {
        let cfg = small();
        let a = cfg.shard_specs(0);
        let b = cfg.shard_specs(1);
        assert_eq!(a.len() + b.len(), 8);
        assert!(a.iter().all(|u| u.id % 2 == 0));
        assert!(b.iter().all(|u| u.id % 2 == 1));
        // Both shards see both populations.
        assert!(a.iter().any(|u| u.mobility == MobilityKind::Vehicular));
        assert!(b.iter().any(|u| u.mobility == MobilityKind::Vehicular));
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(Deployment::new().build().is_err(), "no population");
        assert!(Deployment::new()
            .population(0, MobilityKind::Walk, ProtocolKind::SilentTracker)
            .build()
            .is_err());
        assert!(Deployment::new()
            .population(1, MobilityKind::Walk, ProtocolKind::SilentTracker)
            .shards(0)
            .build()
            .is_err());
    }

    #[test]
    fn validation_rejects_degenerate_spawn_axes() {
        let flat_y = Deployment::new()
            .population(1, MobilityKind::Walk, ProtocolKind::SilentTracker)
            .spawn_region((-10.0, 10.0), (1.0, 1.0))
            .build();
        assert!(flat_y.is_err(), "zero-height spawn_y must be rejected");
        let flat_x = Deployment::new()
            .population(1, MobilityKind::Walk, ProtocolKind::SilentTracker)
            .spawn_region((3.0, 3.0), (-1.0, 1.0))
            .build();
        assert!(flat_x.is_err(), "zero-width spawn_x must be rejected");
    }

    #[test]
    fn tiles_cluster_cells_contiguously() {
        // small(): 4 cells along x at -120, -40, 40, 120 over 2 shards.
        let cfg = small();
        let tiles = cfg.tiles();
        assert_eq!(tiles.clusters, vec![vec![0, 1], vec![2, 3]]);
        // Boundary at the midpoint between the facing cells (±40).
        assert_eq!(tiles.boundaries, vec![0.0]);
        assert_eq!(tiles.tile_of_x(-1.0), 0);
        assert_eq!(tiles.tile_of_x(0.0), 0, "boundary belongs to the left tile");
        assert_eq!(tiles.tile_of_x(0.1), 1);
        assert_eq!(tiles.tile_interval(0, 500.0), (-500.0, 0.0));
        assert_eq!(tiles.tile_interval(1, 500.0), (0.0, 500.0));
    }

    #[test]
    fn reachable_cells_respect_radius_plus_travel_margin() {
        let mut cfg = small();
        let tiles = cfg.tiles();
        // No interest radius: every tile can hear every cell.
        assert_eq!(cfg.reachable_cells(&tiles, 0), vec![0, 1, 2, 3]);
        // 60 m radius, 1 s horizon, fastest slice vehicular (8.9408
        // m/s): margin = 8.9408 · 1 + 5 ≈ 13.94 m, so tile 0 (x ≤ 0)
        // reaches the near far-side cell at x = 40 but not the one at
        // x = 120 (dist 120 > 60 + 13.94).
        cfg.interest_radius_m = Some(60.0);
        let vmax = MobilityKind::Vehicular.max_speed_mps();
        assert!((cfg.travel_margin_m() - (vmax + 5.0)).abs() < 1e-9);
        assert_eq!(cfg.reachable_cells(&tiles, 0), vec![0, 1, 2]);
        assert_eq!(cfg.reachable_cells(&tiles, 1), vec![1, 2, 3]);
    }

    #[test]
    fn tile_shard_partition_assigns_by_spawn_abscissa() {
        let mut cfg = small();
        cfg.shard_strategy = ShardStrategy::Tiles;
        let tiles = cfg.tiles();
        let shards = cfg.shard_partition();
        assert_eq!(shards.iter().map(Vec::len).sum::<usize>(), 8);
        for (s, shard) in shards.iter().enumerate() {
            for u in shard {
                assert_eq!(tiles.tile_of_x(cfg.spawn_x_of(u.id)), s);
            }
            // Slices stay ascending by global id within each shard.
            assert!(shard.windows(2).all(|w| w[0].id < w[1].id));
        }
    }

    #[test]
    fn nearest_cell_picks_closest() {
        let cells = vec![CellConfig::at(-40.0, 10.0), CellConfig::at(40.0, 10.0)];
        assert_eq!(nearest_cell(&cells, Vec2::new(-30.0, 0.0)), 0);
        assert_eq!(nearest_cell(&cells, Vec2::new(35.0, 0.0)), 1);
    }
}
