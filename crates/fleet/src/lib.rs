//! # st-fleet — multi-UE, multi-cell fleet simulation
//!
//! The single-trial [`st_net::Scenario`] answers "what happens to *one*
//! mobile at the cell edge?". This crate answers the load question the
//! paper's premise raises: Silent Tracker's make-before-break handover
//! arrives at the target's PRACH with an aligned beam — but PRACH
//! occasions, preamble pools and backhaul pipes are *shared*, so the value
//! of that claim under many contending UEs is a fleet-scale property.
//!
//! One fleet run is **one discrete-event simulation per shard** with N UEs
//! sharing M cells: real preamble collisions (two UEs, same preamble, same
//! occasion → one RAR, Msg4 contention resolution, loser backs off),
//! admission-control rejections, and soft-handover context fetches
//! serializing through each cell's backhaul queue.
//!
//! * [`deployment`] — declarative [`Deployment`] builder for cell layouts
//!   and heterogeneous UE populations (mixed mobility and protocol arms).
//! * [`sim`] — the multi-UE shard engine (reuses `st_des::Executive`,
//!   `st_net::radio`, `st_net::proto`).
//! * [`runner`] — sharded parallel execution over `std::thread::scope`
//!   with per-shard seed splitting; aggregates are bit-identical
//!   regardless of worker count.
//! * [`stage`] — the shared cross-shard RACH resolution stage
//!   ([`FleetConfig::exact_contention`]): shards synchronize at PRACH
//!   occasion barriers and each occasion resolves over the globally
//!   merged attempt set in canonical order, making contention exact and
//!   the aggregate byte-identical across *shard* counts too.
//! * [`metrics`] — per-cell RACH collision rate / occasion occupancy and
//!   fleet-wide interruption CDFs, flowing through `st_metrics`.
//! * [`telemetry`] — streaming constant-memory observability: shard rings
//!   of time-sliced [`SnapshotSlice`]s (mergeable quantile sketches plus
//!   counters), surfaced as a timeline on [`FleetOutcome`] together with
//!   the deterministic run profiler.
//! * [`attribution`] — fleet-side causal interruption attribution:
//!   deterministic worst-k exemplar retention, refolding recorded trace
//!   marks into phase breakdowns, and the shared human-readable
//!   formatter behind `fleet_load --explain-top` and `autopsy`.
//!
//! ```
//! use st_fleet::{Deployment, MobilityKind, run_fleet};
//! use st_net::ProtocolKind;
//!
//! let cfg = Deployment::new()
//!     .street(200.0, 30.0)
//!     .cell_row(2, 80.0)
//!     .tx_beams(8)
//!     .population(4, MobilityKind::Walk, ProtocolKind::SilentTracker)
//!     .duration_secs(0.5)
//!     .seed(1)
//!     .build()
//!     .unwrap();
//! let out = run_fleet(&cfg);
//! assert_eq!(out.totals.ues, 4);
//! ```

pub mod attribution;
pub mod deployment;
pub mod metrics;
pub mod runner;
pub mod sim;
pub mod stage;
pub mod telemetry;

pub use attribution::{breakdowns_from_traces, format_breakdown, format_worst, marks_from_traces};
pub use deployment::{
    Deployment, FleetConfig, MobilityKind, PopulationSpec, ShardStrategy, TilePartition, UeSpec,
};
pub use metrics::{CellLoad, FleetOutcome, InterruptionStats, ShardOutcome, StageReport};
pub use runner::{run_fleet, run_fleet_exact_with_order, run_fleet_with_workers, StageOrder};
pub use stage::{RachAttemptMsg, RachReply, RachReq, SharedRachStage, StageCounters};
pub use telemetry::{SnapshotRing, SnapshotSlice};

#[cfg(test)]
mod tests {
    use super::*;
    use st_net::ProtocolKind;

    /// A deliberately contended deployment: one shard (so every UE shares
    /// one PRACH), few preambles, many simultaneous walkers funnelled
    /// through the same cell boundary.
    fn contended(seed: u64) -> FleetConfig {
        Deployment::new()
            .street(200.0, 30.0)
            .cell_row(2, 80.0)
            .tx_beams(8)
            .prach_preambles(2)
            .spawn_region((-12.0, 0.0), (-3.0, 3.0))
            .population(48, MobilityKind::Walk, ProtocolKind::SilentTracker)
            .duration_secs(2.0)
            .seed(seed)
            .build()
            .unwrap()
    }

    #[test]
    fn fleet_completes_handovers_under_contention() {
        let out = run_fleet(&contended(11));
        assert!(out.totals.handovers > 0, "no handovers\n{}", out.summary());
        assert!(
            out.totals.soft_interruptions_ms.iter().all(|&ms| ms > 0.0),
            "non-positive interruption"
        );
        // Somebody transmitted preambles and the target heard them.
        let tx: u64 = out.totals.per_cell.iter().map(|c| c.preambles_tx).sum();
        let heard: u64 = out
            .totals
            .per_cell
            .iter()
            .map(|c| c.responder.preambles_heard)
            .sum();
        assert!(tx >= heard && heard > 0, "tx={tx} heard={heard}");
    }

    #[test]
    fn contention_produces_collisions_that_resolve() {
        // 24 UEs, 2 preambles, one shard: collisions are near-certain.
        let out = run_fleet(&contended(11));
        let collisions: u64 = out
            .totals
            .per_cell
            .iter()
            .map(|c| c.responder.collisions)
            .sum();
        assert!(collisions > 0, "no collisions:\n{}", out.summary());
        // Collisions did not deadlock the fleet: handovers still complete.
        assert!(out.totals.handovers > 0);
        // Occupancy and collision rate are well-formed fractions.
        for c in &out.totals.per_cell {
            assert!((0.0..=1.0).contains(&c.occupancy()), "{}", c.occupancy());
            assert!(c.collision_rate() >= 0.0);
        }
    }

    #[test]
    fn mixed_population_reports_both_arms() {
        let cfg = Deployment::new()
            .street(200.0, 30.0)
            .cell_row(2, 80.0)
            .tx_beams(8)
            .population(6, MobilityKind::Walk, ProtocolKind::SilentTracker)
            .population(6, MobilityKind::Walk, ProtocolKind::Reactive)
            .duration_secs(1.5)
            .seed(5)
            .shards(2)
            .build()
            .unwrap();
        let out = run_fleet(&cfg);
        assert_eq!(out.totals.ues, 12);
        // Both arms ran; the summary mentions each.
        let s = out.summary();
        assert!(s.contains("soft ") && s.contains("hard "));
    }
}
