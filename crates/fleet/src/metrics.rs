//! Fleet-level aggregates: per-cell RACH load and per-UE handover
//! outcomes, merged across shards in shard order so results are
//! bit-identical regardless of how many worker threads ran the shards.

use std::collections::BTreeSet;

use silent_tracker::attribution::{Cause, InterruptionBreakdown, Phase};
use st_des::SimDuration;
use st_mac::responder::ResponderStats;
use st_metrics::{Accumulator, Ecdf, Profiler, QuantileSketch, SketchMap, Table};
use st_net::UeTrace;

use crate::stage::StageCounters;
use crate::telemetry::SnapshotRing;

/// RACH and backhaul load observed at one cell.
#[derive(Debug, Clone, Copy, Default)]
pub struct CellLoad {
    /// BS-side responder counters (collisions, contention losses, …).
    pub responder: ResponderStats,
    /// Preamble transmissions UEs aimed at this cell (some are lost on
    /// air before the responder hears them).
    pub preambles_tx: u64,
    /// Distinct PRACH occasions on which ≥ 1 preamble was transmitted.
    pub occasions_used: u64,
    /// PRACH occasions the cell offered over the run.
    pub occasions_total: u64,
    /// Handovers completed with this cell as the target.
    pub handovers_in: u64,
}

impl CellLoad {
    /// Fraction of heard preambles that collided with another UE.
    pub fn collision_rate(&self) -> f64 {
        if self.responder.preambles_heard == 0 {
            return 0.0;
        }
        // Each collision involves ≥ 2 of the heard preambles.
        (2 * self.responder.collisions) as f64 / self.responder.preambles_heard as f64
    }

    /// Fraction of offered PRACH occasions actually used.
    pub fn occupancy(&self) -> f64 {
        if self.occasions_total == 0 {
            return 0.0;
        }
        self.occasions_used as f64 / self.occasions_total as f64
    }

    pub fn merge(&mut self, other: &CellLoad) {
        let r = &mut self.responder;
        let o = other.responder;
        r.preambles_heard += o.preambles_heard;
        r.collisions += o.collisions;
        r.rar_sent += o.rar_sent;
        r.contention_losses += o.contention_losses;
        r.rejected += o.rejected;
        r.context_fetches += o.context_fetches;
        r.backhaul_queue_wait = r.backhaul_queue_wait + o.backhaul_queue_wait;
        self.preambles_tx += other.preambles_tx;
        self.occasions_used += other.occasions_used;
        self.occasions_total += other.occasions_total;
        self.handovers_in += other.handovers_in;
    }
}

/// Everything one shard observed.
#[derive(Debug, Clone, Default)]
pub struct ShardOutcome {
    pub per_cell: Vec<CellLoad>,
    /// This shard ran under the shared cross-shard responder stage (its
    /// own responders stayed idle; the merge must not sum them and must
    /// union occasion instants instead of summing per-shard counts).
    pub exact: bool,
    /// Raw instants (ns) of PRACH occasions this shard's UEs transmitted
    /// on, per cell — unioned across shards by the exact-mode merge so a
    /// globally shared occasion is counted once.
    pub occasion_instants: Vec<BTreeSet<u64>>,
    /// Soft-handover (make-before-break) interruptions, ms, in UE order.
    /// Populated only under [`FleetConfig::exact_ecdfs`] — the streaming
    /// default keeps no raw samples and the sketches below are the
    /// source of quantiles.
    ///
    /// [`FleetConfig::exact_ecdfs`]: crate::FleetConfig::exact_ecdfs
    pub soft_interruptions_ms: Vec<f64>,
    /// Hard-handover (post-RLF reactive) interruptions, ms, in UE order.
    /// Same retention rule as `soft_interruptions_ms`.
    pub hard_interruptions_ms: Vec<f64>,
    /// Streaming soft-interruption sketch — always populated, fixed
    /// size, mergeable across shards with byte-identical results.
    pub soft_sketch: QuantileSketch,
    /// Streaming hard-interruption sketch.
    pub hard_sketch: QuantileSketch,
    /// Per-cause soft-interruption ledger: one streaming sketch per root
    /// cause, keyed by the stable cause label, merged in canonical key
    /// order (byte-identical across worker counts, constant memory).
    pub soft_causes: SketchMap,
    /// Per-cause hard-interruption ledger; same contract.
    pub hard_causes: SketchMap,
    /// Worst interruptions of the run with full phase breakdowns —
    /// bounded ([`crate::attribution::WORST_CAP`]) and kept in the
    /// canonical worst-first order, so the retained set is identical at
    /// any shard/worker split.
    pub worst: Vec<InterruptionBreakdown>,
    /// Time-sliced snapshot ring ([`FleetConfig::snapshot_interval`]).
    ///
    /// [`FleetConfig::snapshot_interval`]: crate::FleetConfig::snapshot_interval
    pub timeline: Option<SnapshotRing>,
    /// Deterministic work counters plus (non-deterministic, separately
    /// surfaced) wall-time spans for this shard / the merged run.
    pub profile: Profiler,
    pub ues: u64,
    pub handovers: u64,
    pub rlfs: u64,
    pub rach_attempts: u64,
    pub search_dwells: u64,
    pub nrba_switches: u64,
    pub events: u64,
    /// Shards whose executive tripped the per-shard event budget
    /// (runaway guard) instead of reaching the deadline. Zero on any
    /// healthy run.
    pub budget_exhausted_shards: u64,
    /// Recorded per-UE protocol traces ([`FleetConfig::record_traces`]).
    /// Merged in global UE-id order; deliberately excluded from
    /// [`FleetOutcome::summary`].
    ///
    /// [`FleetConfig::record_traces`]: crate::FleetConfig
    pub ue_traces: Vec<UeTrace>,
}

/// Nondeterministic execution-side observations of an exact-contention
/// run (wall-clock barrier overhead) plus the stage's deterministic
/// counters. Kept out of [`FleetOutcome::summary`]: wall time is not a
/// property of (config, seed).
#[derive(Debug, Clone, Copy, Default)]
pub struct StageReport {
    /// Occasion barriers the run synchronized at.
    pub epochs: u64,
    /// Total wall-clock seconds all workers spent waiting at barriers.
    pub barrier_wait_s: f64,
    /// Deterministic stage counters (resolved preambles/Msg3s, busy
    /// barriers).
    pub counters: StageCounters,
}

/// Merged fleet result.
#[derive(Debug, Clone)]
pub struct FleetOutcome {
    pub seed: u64,
    pub n_shards: usize,
    pub duration: SimDuration,
    /// The run resolved RACH contention through the shared cross-shard
    /// stage (responder stats below are the stage's, reported once per
    /// cell).
    pub exact_contention: bool,
    /// Barrier/stage execution report (exact-contention runs only).
    pub stage: Option<StageReport>,
    pub totals: ShardOutcome,
}

impl FleetOutcome {
    /// Merge shard results *in shard order* — the only order-sensitive
    /// step is concatenating the interruption sample vectors, and shard
    /// order is a property of the config, not of thread scheduling.
    pub fn merge(
        seed: u64,
        duration: SimDuration,
        shards: impl IntoIterator<Item = ShardOutcome>,
    ) -> FleetOutcome {
        let mut totals = ShardOutcome::default();
        let mut n_shards: usize = 0;
        let mut exact = false;
        // Every shard derives the same offered-occasion totals from the
        // shared config; the exact-mode fixup below relies on that, so
        // capture the first shard's values to assert it.
        let mut first_occasions_total: Vec<u64> = Vec::new();
        let mut timeline: Option<SnapshotRing> = None;
        let mut timeline_ok = true;
        for mut s in shards {
            n_shards += 1;
            exact |= s.exact;
            totals.soft_sketch.merge(&s.soft_sketch);
            totals.hard_sketch.merge(&s.hard_sketch);
            totals.soft_causes.merge(&s.soft_causes);
            totals.hard_causes.merge(&s.hard_causes);
            crate::attribution::merge_worst(&mut totals.worst, &s.worst);
            totals.profile.merge(&s.profile);
            // Shard timelines share one shape (same config drives the
            // compaction schedule); a mismatch means some shard was cut
            // short (event-budget guard), in which case the timeline is
            // dropped rather than reported wrong or panicked on.
            if n_shards == 1 {
                timeline = s.timeline.take();
            } else {
                match (timeline.as_mut(), s.timeline.as_ref()) {
                    (Some(t), Some(r)) if t.compatible(r) => t.merge(r),
                    (None, None) => {}
                    _ => timeline_ok = false,
                }
            }
            if totals.per_cell.is_empty() {
                totals.per_cell = vec![CellLoad::default(); s.per_cell.len()];
                first_occasions_total = s.per_cell.iter().map(|c| c.occasions_total).collect();
            }
            for (t, c) in totals.per_cell.iter_mut().zip(s.per_cell.iter()) {
                t.merge(c);
            }
            if s.exact {
                // Under the shared stage the shards still model one set
                // of *global* PRACH occasions: union the used instants
                // (a shared occasion is one occasion) and keep the
                // offered total once instead of once per shard.
                if totals.occasion_instants.is_empty() {
                    totals.occasion_instants = vec![BTreeSet::new(); s.occasion_instants.len()];
                }
                for (t, c) in totals
                    .occasion_instants
                    .iter_mut()
                    .zip(s.occasion_instants.iter_mut())
                {
                    t.append(c);
                }
            }
            totals.soft_interruptions_ms.extend(s.soft_interruptions_ms);
            totals.hard_interruptions_ms.extend(s.hard_interruptions_ms);
            totals.ues += s.ues;
            totals.handovers += s.handovers;
            totals.rlfs += s.rlfs;
            totals.rach_attempts += s.rach_attempts;
            totals.search_dwells += s.search_dwells;
            totals.nrba_switches += s.nrba_switches;
            totals.events += s.events;
            totals.budget_exhausted_shards += s.budget_exhausted_shards;
            totals.ue_traces.append(&mut s.ue_traces);
        }
        // Shards interleave UEs round-robin; restore global id order so
        // the trace set is identical for every shard/worker split.
        totals.ue_traces.sort_by_key(|u| u.id);
        totals.timeline = if timeline_ok { timeline } else { None };
        if exact {
            totals.exact = true;
            for (cell, t) in totals.per_cell.iter_mut().enumerate() {
                t.occasions_used = totals
                    .occasion_instants
                    .get(cell)
                    .map_or(0, |s| s.len() as u64);
                // The shards model one shared cell: each reported the
                // same config-derived offered total, so the cell's total
                // is that value once — not once per shard.
                let per_shard = first_occasions_total.get(cell).copied().unwrap_or(0);
                assert_eq!(
                    t.occasions_total,
                    per_shard * n_shards as u64,
                    "cell {cell}: shards disagree on the offered PRACH occasion total"
                );
                t.occasions_total = per_shard;
            }
        }
        FleetOutcome {
            seed,
            n_shards,
            duration,
            exact_contention: exact,
            stage: None,
            totals,
        }
    }

    /// Install the shared stage's per-cell responder statistics —
    /// reported **once** per cell. In exact-contention mode every
    /// per-shard responder is idle (all RACH traffic resolves at the
    /// stage), so the summed per-shard counters this replaces are zero;
    /// summing the stage's counters per shard would double-, quadruple-,
    /// N-count them (the regression `metrics::tests` pins).
    pub fn apply_shared_responders(&mut self, per_cell: Vec<ResponderStats>) {
        assert_eq!(
            per_cell.len(),
            self.totals.per_cell.len(),
            "stage cell count must match the fleet's"
        );
        for (cell, stats) in self.totals.per_cell.iter_mut().zip(per_cell) {
            debug_assert_eq!(
                cell.responder,
                ResponderStats::default(),
                "per-shard responders must stay idle under the shared stage"
            );
            cell.responder = stats;
        }
    }

    /// CDF of soft-handover interruption (ms), if any completed.
    pub fn soft_interruption_ecdf(&self) -> Option<Ecdf> {
        Ecdf::new(self.totals.soft_interruptions_ms.clone()).ok()
    }

    /// CDF of hard-handover interruption (ms), if any completed.
    pub fn hard_interruption_ecdf(&self) -> Option<Ecdf> {
        Ecdf::new(self.totals.hard_interruptions_ms.clone()).ok()
    }

    /// Handover attempts per offered PRACH occasion, fleet-wide — the
    /// load axis of the `fleet_load` bench.
    pub fn offered_load(&self) -> f64 {
        let occasions: u64 = self.totals.per_cell.iter().map(|c| c.occasions_total).sum();
        if occasions == 0 {
            return 0.0;
        }
        let tx: u64 = self.totals.per_cell.iter().map(|c| c.preambles_tx).sum();
        tx as f64 / occasions as f64
    }

    /// Deterministic one-blob textual aggregate: byte-identical for
    /// identical (config, seed) regardless of worker count — the artifact
    /// the CI fleet-smoke step compares across invocations. In
    /// exact-contention mode it is additionally byte-identical across
    /// *shard* counts, so it deliberately reports no shard-structure
    /// artifacts (shard count, per-shard DES event sums — those live on
    /// [`FleetOutcome::n_shards`] / [`ShardOutcome::events`]).
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let t = &self.totals;
        writeln!(
            s,
            "fleet seed={} ues={} duration_ms={:.3} contention={}",
            self.seed,
            t.ues,
            self.duration.as_millis_f64(),
            if self.exact_contention {
                "exact"
            } else {
                "sharded"
            },
        )
        .unwrap();
        for (i, c) in t.per_cell.iter().enumerate() {
            writeln!(
                s,
                "cell{} tx={} heard={} collisions={} rar={} losses={} rejected={} \
                 occ={}/{} fetches={} queue_wait_us={} handovers_in={} \
                 merged_occ={} peak_merge={}",
                i,
                c.preambles_tx,
                c.responder.preambles_heard,
                c.responder.collisions,
                c.responder.rar_sent,
                c.responder.contention_losses,
                c.responder.rejected,
                c.occasions_used,
                c.occasions_total,
                c.responder.context_fetches,
                c.responder.backhaul_queue_wait.as_nanos() / 1000,
                c.handovers_in,
                c.responder.merged_occasions,
                c.responder.peak_merged_attempts,
            )
            .unwrap();
        }
        // Quantile source switch: raw samples when retained (exact-ECDF
        // mode — reproduces the pre-sketch bytes exactly), the merged
        // sketch otherwise. Same line format either way, and both are
        // deterministic functions of (config, seed).
        let quant = |v: &[f64], sk: &QuantileSketch| -> String {
            if let Ok(e) = Ecdf::new(v.to_vec()) {
                format!(
                    "n={} p50_ms={:.3} p95_ms={:.3} max_ms={:.3}",
                    e.len(),
                    e.median(),
                    e.quantile(0.95),
                    e.max()
                )
            } else if !sk.is_empty() {
                format!(
                    "n={} p50_ms={:.3} p95_ms={:.3} max_ms={:.3}",
                    sk.count(),
                    sk.quantile(0.5).unwrap_or(0.0),
                    sk.quantile(0.95).unwrap_or(0.0),
                    sk.max().unwrap_or(0.0)
                )
            } else {
                "n=0".into()
            }
        };
        writeln!(
            s,
            "handovers={} rlfs={} rach_attempts={} search_dwells={} nrba_switches={} \
             budget_exhausted_shards={}",
            t.handovers,
            t.rlfs,
            t.rach_attempts,
            t.search_dwells,
            t.nrba_switches,
            t.budget_exhausted_shards,
        )
        .unwrap();
        writeln!(
            s,
            "soft {}",
            quant(&t.soft_interruptions_ms, &t.soft_sketch)
        )
        .unwrap();
        writeln!(
            s,
            "hard {}",
            quant(&t.hard_interruptions_ms, &t.hard_sketch)
        )
        .unwrap();
        // Per-cause attribution ledgers, in canonical (lexicographic
        // label) order — only causes that actually occurred are listed.
        for (arm, map) in [("soft", &t.soft_causes), ("hard", &t.hard_causes)] {
            for (key, sk) in map.iter() {
                writeln!(
                    s,
                    "cause {} {} n={} p50_ms={:.3} p95_ms={:.3} max_ms={:.3}",
                    arm,
                    key,
                    sk.count(),
                    sk.quantile(0.5).unwrap_or(0.0),
                    sk.quantile(0.95).unwrap_or(0.0),
                    sk.max().unwrap_or(0.0)
                )
                .unwrap();
            }
        }
        s
    }

    /// Human-oriented per-cell table.
    pub fn render_cells(&self) -> String {
        let mut t = Table::new(
            "Per-cell RACH load",
            &[
                "cell",
                "preambles",
                "collision_%",
                "occupancy_%",
                "losses",
                "fetches",
                "queue_ms",
                "handovers",
            ],
        );
        for (i, c) in self.totals.per_cell.iter().enumerate() {
            t.row(&[
                format!("{i}"),
                format!("{}", c.responder.preambles_heard),
                format!("{:.1}", c.collision_rate() * 100.0),
                format!("{:.1}", c.occupancy() * 100.0),
                format!("{}", c.responder.contention_losses),
                format!("{}", c.responder.context_fetches),
                format!("{:.1}", c.responder.backhaul_queue_wait.as_millis_f64()),
                format!("{}", c.handovers_in),
            ]);
        }
        t.render()
    }

    /// Mean soft interruption with CI, if any.
    pub fn soft_interruption_summary(&self) -> Option<st_metrics::Summary> {
        summarize(&self.totals.soft_interruptions_ms)
    }

    /// Mean hard interruption with CI, if any.
    pub fn hard_interruption_summary(&self) -> Option<st_metrics::Summary> {
        summarize(&self.totals.hard_interruptions_ms)
    }

    /// Soft-interruption quantiles — exact when raw samples were
    /// retained, sketch-derived (bounded relative error) otherwise.
    pub fn soft_stats(&self) -> Option<InterruptionStats> {
        interruption_stats(&self.totals.soft_interruptions_ms, &self.totals.soft_sketch)
    }

    /// Hard-interruption quantiles; same sourcing rule as
    /// [`FleetOutcome::soft_stats`].
    pub fn hard_stats(&self) -> Option<InterruptionStats> {
        interruption_stats(&self.totals.hard_interruptions_ms, &self.totals.hard_sketch)
    }

    /// The merged snapshot timeline, when the run was armed with
    /// [`FleetConfig::snapshot_interval`].
    ///
    /// [`FleetConfig::snapshot_interval`]: crate::FleetConfig::snapshot_interval
    pub fn timeline(&self) -> Option<&SnapshotRing> {
        self.totals.timeline.as_ref()
    }

    /// The merged run profiler: deterministic work counters (asserted
    /// byte-identical across worker counts) plus wall-time spans (not).
    pub fn profile(&self) -> &Profiler {
        &self.totals.profile
    }

    /// Render the merged timeline as deterministic JSON — the
    /// `BENCH_fleet_timeline.json` artifact. Contains **no wall-clock
    /// values**: every byte is a function of (config, seed), so CI can
    /// `cmp` the file across worker counts.
    ///
    /// Schema (`st-fleet-timeline-v2`): `dt_s` is the effective slice
    /// width after ring compaction (`base_dt_s` times a power of two);
    /// `slices[i]` covers `[t_start_s, t_end_s)` with per-arm
    /// interruption quantiles (`n/p50_ms/p95_ms/p99_ms/max_ms`, zero
    /// when `n == 0`), interval counters (handovers, rlfs,
    /// rach_attempts, preambles_tx, occasions_used, preambles_heard,
    /// collisions, collision_rate, contention_losses, backhaul_wait_us),
    /// per-cause attributed-interruption counts (`causes`, canonical
    /// cause order — v2 addition) and boundary gauges
    /// (backhaul_backlog_us, event_queue_depth).
    pub fn timeline_json(&self) -> Option<String> {
        use std::fmt::Write as _;
        let ring = self.totals.timeline.as_ref()?;
        let dt = ring.effective_interval();
        let mut s = String::new();
        writeln!(s, "{{").unwrap();
        writeln!(s, "  \"schema\": \"st-fleet-timeline-v2\",").unwrap();
        writeln!(s, "  \"seed\": {},", self.seed).unwrap();
        writeln!(s, "  \"duration_s\": {:.6},", self.duration.as_secs_f64()).unwrap();
        writeln!(
            s,
            "  \"base_dt_s\": {:.6},",
            ring.base_interval().as_secs_f64()
        )
        .unwrap();
        writeln!(s, "  \"dt_s\": {:.6},", dt.as_secs_f64()).unwrap();
        writeln!(s, "  \"n_slices\": {},", ring.slices().len()).unwrap();
        writeln!(s, "  \"slices\": [").unwrap();
        let arm = |sk: &QuantileSketch| -> String {
            if sk.is_empty() {
                "{\"n\": 0, \"p50_ms\": 0.000, \"p95_ms\": 0.000, \
                 \"p99_ms\": 0.000, \"max_ms\": 0.000}"
                    .into()
            } else {
                format!(
                    "{{\"n\": {}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \
                     \"p99_ms\": {:.3}, \"max_ms\": {:.3}}}",
                    sk.count(),
                    sk.quantile(0.5).unwrap_or(0.0),
                    sk.quantile(0.95).unwrap_or(0.0),
                    sk.quantile(0.99).unwrap_or(0.0),
                    sk.max().unwrap_or(0.0)
                )
            }
        };
        let n = ring.slices().len();
        for (i, sl) in ring.slices().iter().enumerate() {
            let t0 = dt.as_secs_f64() * i as f64;
            let t1 = (dt.as_secs_f64() * (i + 1) as f64).min(self.duration.as_secs_f64());
            writeln!(s, "    {{").unwrap();
            writeln!(s, "      \"t_start_s\": {t0:.6}, \"t_end_s\": {t1:.6},").unwrap();
            writeln!(s, "      \"soft\": {},", arm(&sl.soft)).unwrap();
            writeln!(s, "      \"hard\": {},", arm(&sl.hard)).unwrap();
            writeln!(
                s,
                "      \"handovers\": {}, \"rlfs\": {}, \"rach_attempts\": {},",
                sl.handovers, sl.rlfs, sl.rach_attempts
            )
            .unwrap();
            writeln!(
                s,
                "      \"preambles_tx\": {}, \"occasions_used\": {}, \
                 \"preambles_heard\": {},",
                sl.preambles_tx, sl.occasions_used, sl.preambles_heard
            )
            .unwrap();
            writeln!(
                s,
                "      \"collisions\": {}, \"collision_rate\": {:.4}, \
                 \"contention_losses\": {},",
                sl.collisions,
                sl.collision_rate(),
                sl.contention_losses
            )
            .unwrap();
            let causes: Vec<String> = Cause::ALL
                .iter()
                .map(|&c| format!("\"{}\": {}", c.label(), sl.cause_counts[c as usize]))
                .collect();
            writeln!(s, "      \"causes\": {{{}}},", causes.join(", ")).unwrap();
            writeln!(
                s,
                "      \"backhaul_wait_us\": {}, \"backhaul_backlog_us\": {}, \
                 \"event_queue_depth\": {}",
                sl.backhaul_wait_us, sl.backhaul_backlog_us, sl.event_queue_depth
            )
            .unwrap();
            writeln!(s, "    }}{}", if i + 1 < n { "," } else { "" }).unwrap();
        }
        writeln!(s, "  ]").unwrap();
        writeln!(s, "}}").unwrap();
        Some(s)
    }

    /// Render the per-cause attribution aggregates as deterministic JSON
    /// (`st-fleet-causes-v1`): per-arm cause ledgers (streaming-sketch
    /// quantiles per cause label, canonical order) and the worst-k
    /// exemplars with their full phase decompositions. Contains **no
    /// wall-clock values** — every byte is a function of (config, seed),
    /// so CI can `cmp` the file across worker counts.
    pub fn causes_json(&self) -> String {
        use std::fmt::Write as _;
        let t = &self.totals;
        let mut s = String::new();
        writeln!(s, "{{").unwrap();
        writeln!(s, "  \"schema\": \"st-fleet-causes-v1\",").unwrap();
        writeln!(s, "  \"seed\": {},", self.seed).unwrap();
        for (name, map) in [
            ("soft_causes", &t.soft_causes),
            ("hard_causes", &t.hard_causes),
        ] {
            writeln!(s, "  \"{name}\": {{").unwrap();
            let n = map.len();
            for (i, (key, sk)) in map.iter().enumerate() {
                writeln!(
                    s,
                    "    \"{}\": {{\"n\": {}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \
                     \"p99_ms\": {:.3}, \"max_ms\": {:.3}}}{}",
                    key,
                    sk.count(),
                    sk.quantile(0.5).unwrap_or(0.0),
                    sk.quantile(0.95).unwrap_or(0.0),
                    sk.quantile(0.99).unwrap_or(0.0),
                    sk.max().unwrap_or(0.0),
                    if i + 1 < n { "," } else { "" }
                )
                .unwrap();
            }
            writeln!(s, "  }},").unwrap();
        }
        writeln!(s, "  \"worst\": [").unwrap();
        let n = t.worst.len();
        for (i, bd) in t.worst.iter().enumerate() {
            let phases: Vec<String> = Phase::ALL
                .iter()
                .map(|&p| format!("\"{}\": {:.6}", p.label(), bd.phases_ms[p as usize]))
                .collect();
            writeln!(
                s,
                "    {{\"ue\": {}, \"from_cell\": {}, \"to_cell\": {}, \"cause\": \"{}\", \
                 \"total_ms\": {:.6}, \"rach_rounds\": {}, \"phases_ms\": {{{}}}}}{}",
                bd.ue,
                bd.from_cell,
                bd.to_cell,
                bd.cause.label(),
                bd.total_ms,
                bd.rach_rounds,
                phases.join(", "),
                if i + 1 < n { "," } else { "" }
            )
            .unwrap();
        }
        writeln!(s, "  ]").unwrap();
        writeln!(s, "}}").unwrap();
        s
    }
}

/// Quantile surface of one interruption arm — the bench-table view that
/// works in both retention modes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterruptionStats {
    pub n: u64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub mean_ms: f64,
    pub max_ms: f64,
    /// `true` when computed from retained raw samples (exact), `false`
    /// when read off the streaming sketch (relative error ≤ its bound).
    pub exact: bool,
}

fn interruption_stats(raw: &[f64], sk: &QuantileSketch) -> Option<InterruptionStats> {
    if let Ok(e) = Ecdf::new(raw.to_vec()) {
        return Some(InterruptionStats {
            n: e.len() as u64,
            p50_ms: e.median(),
            p95_ms: e.quantile(0.95),
            p99_ms: e.quantile(0.99),
            mean_ms: raw.iter().sum::<f64>() / raw.len() as f64,
            max_ms: e.max(),
            exact: true,
        });
    }
    if sk.is_empty() {
        return None;
    }
    Some(InterruptionStats {
        n: sk.count(),
        p50_ms: sk.quantile(0.5).unwrap_or(0.0),
        p95_ms: sk.quantile(0.95).unwrap_or(0.0),
        p99_ms: sk.quantile(0.99).unwrap_or(0.0),
        mean_ms: sk.mean().unwrap_or(0.0),
        max_ms: sk.max().unwrap_or(0.0),
        exact: false,
    })
}

fn summarize(v: &[f64]) -> Option<st_metrics::Summary> {
    if v.is_empty() {
        return None;
    }
    let mut acc = Accumulator::new();
    acc.extend(v.iter().copied());
    Some(acc.summary())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shard(cells: usize, soft: &[f64]) -> ShardOutcome {
        let mut s = ShardOutcome {
            per_cell: vec![CellLoad::default(); cells],
            soft_interruptions_ms: soft.to_vec(),
            ues: 2,
            handovers: soft.len() as u64,
            ..ShardOutcome::default()
        };
        s.per_cell[0].responder.preambles_heard = 10;
        s.per_cell[0].responder.collisions = 2;
        s.per_cell[0].occasions_used = 5;
        s.per_cell[0].occasions_total = 50;
        s.per_cell[0].preambles_tx = 12;
        s
    }

    #[test]
    fn merge_is_shard_order_dependent_only_in_sample_order() {
        let a = shard(2, &[10.0, 20.0]);
        let b = shard(2, &[30.0]);
        let m = FleetOutcome::merge(1, SimDuration::from_secs(1), [a, b]);
        assert_eq!(m.totals.ues, 4);
        assert_eq!(m.totals.soft_interruptions_ms, vec![10.0, 20.0, 30.0]);
        assert_eq!(m.totals.per_cell[0].responder.preambles_heard, 20);
        assert_eq!(m.totals.per_cell[0].responder.collisions, 4);
    }

    #[test]
    fn rates_handle_empty_and_loaded_cells() {
        let m = FleetOutcome::merge(1, SimDuration::from_secs(1), [shard(2, &[15.0])]);
        let c0 = &m.totals.per_cell[0];
        assert!((c0.collision_rate() - 0.4).abs() < 1e-12);
        assert!((c0.occupancy() - 0.1).abs() < 1e-12);
        let c1 = &m.totals.per_cell[1];
        assert_eq!(c1.collision_rate(), 0.0);
        assert_eq!(c1.occupancy(), 0.0);
    }

    #[test]
    fn summary_is_deterministic_text() {
        let m1 = FleetOutcome::merge(1, SimDuration::from_secs(1), [shard(1, &[10.0])]);
        let m2 = FleetOutcome::merge(1, SimDuration::from_secs(1), [shard(1, &[10.0])]);
        assert_eq!(m1.summary(), m2.summary());
        assert!(m1.summary().contains("cell0"));
        assert!(m1.summary().contains("soft n=1"));
        assert!(m1.render_cells().contains("Per-cell RACH load"));
    }

    /// Satellite regression: with the shared stage, responder counters
    /// are *global* — the merge must report them once per cell, not once
    /// per shard, and occasion accounting must union instants instead of
    /// summing per-shard distinct counts.
    #[test]
    fn exact_merge_reports_shared_responders_once_per_cell() {
        let exact_shard = |instants: &[u64]| {
            let mut s = ShardOutcome {
                per_cell: vec![CellLoad::default(); 2],
                exact: true,
                occasion_instants: vec![instants.iter().copied().collect(), BTreeSet::new()],
                ues: 3,
                ..ShardOutcome::default()
            };
            // UE-side offered load is still per-shard additive…
            s.per_cell[0].preambles_tx = 5;
            s.per_cell[0].occasions_used = instants.len() as u64;
            s.per_cell[0].occasions_total = 50;
            s.per_cell[1].occasions_total = 50;
            s
        };
        // Shards share occasions 20 and 30: the union has 4 instants,
        // not 3 + 3.
        let a = exact_shard(&[10, 20, 30]);
        let b = exact_shard(&[20, 30, 40]);
        let mut m = FleetOutcome::merge(1, SimDuration::from_secs(1), [a, b]);
        assert!(m.exact_contention);
        assert_eq!(m.totals.per_cell[0].occasions_used, 4);
        // …and the offered total is the one set of global occasions the
        // cell actually transmitted, not once per shard.
        assert_eq!(m.totals.per_cell[0].occasions_total, 50);
        assert_eq!(m.totals.per_cell[0].preambles_tx, 10);

        // The stage's responder counters land once per cell, untouched
        // by the shard count.
        let stage_stats = ResponderStats {
            preambles_heard: 40,
            collisions: 7,
            rar_sent: 38,
            ..ResponderStats::default()
        };
        m.apply_shared_responders(vec![stage_stats, ResponderStats::default()]);
        assert_eq!(m.totals.per_cell[0].responder, stage_stats);
        assert_eq!(m.totals.per_cell[1].responder, ResponderStats::default());
        // Collision rate reads off the global counters.
        assert!((m.totals.per_cell[0].collision_rate() - 14.0 / 40.0).abs() < 1e-12);
    }

    #[test]
    fn ecdfs_require_samples() {
        let m = FleetOutcome::merge(1, SimDuration::from_secs(1), [shard(1, &[])]);
        assert!(m.soft_interruption_ecdf().is_none());
        assert!(m.soft_interruption_summary().is_none());
        let m2 = FleetOutcome::merge(1, SimDuration::from_secs(1), [shard(1, &[5.0, 7.0])]);
        assert_eq!(m2.soft_interruption_ecdf().unwrap().len(), 2);
        assert!(m2.soft_interruption_summary().unwrap().mean > 5.9);
    }
}
