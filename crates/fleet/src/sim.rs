//! One fleet shard: N UEs sharing M cells on a single discrete-event
//! executive.
//!
//! This is the multi-UE generalization of the single-trial executor in
//! `st_net::scenario`, reusing its factored radio plumbing
//! ([`st_net::radio`]) and protocol dispatch ([`st_net::proto`]). What is
//! *new* here is the MAC under load:
//!
//! * all UEs share each cell's PRACH occasions — two UEs picking the same
//!   preamble on the same occasion collide, both accept the one RAR, and
//!   Msg4 contention resolution picks a winner while the loser backs off
//!   and retries (driven by the extended [`RachResponder`]);
//! * soft-handover context fetches serialize through each cell's FIFO
//!   backhaul pipe, so Msg4 latency — and therefore interruption — grows
//!   with handover load;
//! * unlike a single trial, the run never halts at the first handover:
//!   after completion the protocol is re-anchored on the new serving cell
//!   and keeps going, so one UE can hand over repeatedly.
//!
//! Every stochastic component draws from a stream derived from the fleet
//! master seed and the *global* UE id, so a UE behaves identically no
//! matter which shard (or worker thread) runs it.

use std::collections::BTreeSet;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::RngExt as _;

use silent_tracker::attribution::{InterruptionBreakdown, InterruptionMarks};
use silent_tracker::tracker::{Action, HandoverDirective, Input};
use silent_tracker::HandoverReason;
use st_des::{Control, Executive, RngStreams, SimDuration, SimTime, StopReason};
use st_mac::pdu::{CellId, Pdu, UeId};
use st_mac::rach::{RachProcedure, RachState};
use st_mac::responder::{RachResponder, ResponderConfig};
use st_mac::timing::TxBeamIndex;
use st_mobility::{BoxedModel, Composite, DeviceRotation, HumanWalk, TurnAt, Vehicular};
use st_net::config::ProtocolKind;
use st_net::proto::Proto;
use st_net::radio::{LinkSet, Sites};
use st_phy::codebook::{BeamId, Codebook};
use st_phy::geometry::{Pose, Radians, Vec2};
use st_phy::link::RadioCal;
use st_phy::units::Dbm;

use st_net::config::ScenarioConfig;

use st_metrics::{Profiler, QuantileSketch, SketchMap};

use crate::deployment::{nearest_cell, FleetConfig, MobilityKind, UeSpec};
use crate::metrics::{CellLoad, ShardOutcome};
use crate::stage::{RachAttemptMsg, RachReply, RachReq};
use crate::telemetry::{SnapshotRing, SnapshotSlice};

/// Short over-the-air + processing delays (as in the single-UE executor).
const AIR_DELAY: SimDuration = SimDuration::from_micros(500);
const MSG2_DELAY: SimDuration = SimDuration::from_millis(2);
const MSG4_PROCESSING: SimDuration = SimDuration::from_millis(2);
/// Soft-handover context tokens are `BASE | ue`, always nonzero.
const CONTEXT_TOKEN_BASE: u64 = 0x511E_27AC_0000_0000;

/// Simulation events. Periodic drivers (`Burst`, `DwellEnd`,
/// `ServingMeas`, `Tick`) are shared — one event iterates every UE in
/// global-id order, which keeps the pending set small and the dispatch
/// order deterministic. Targeted events carry the *global* UE id
/// (resolved by binary search over the shard's id-sorted UE vector), so
/// they survive UEs migrating in and out of the shard between tile
/// boundaries — no index is ever invalidated.
#[derive(Debug, Clone)]
enum Ev {
    Burst {
        k: u64,
    },
    DwellEnd,
    ServingMeas,
    Tick,
    UeRx {
        ue: u32,
        cell: u16,
        tx_beam: TxBeamIndex,
        pdu: Pdu,
    },
    BsRx {
        ue: u32,
        cell: u16,
        pdu: Pdu,
    },
    AssistApply {
        ue: u32,
        cell: u16,
        tx_beam: TxBeamIndex,
    },
    RachTry {
        ue: u32,
    },
    /// Telemetry boundary `k` (at `k * snapshot_interval`): seal the
    /// current [`SnapshotSlice`] and chain the next boundary. The
    /// handler only reads counters — it consumes no RNG draws, so
    /// arming snapshots never perturbs the simulated outcome.
    Snapshot {
        k: u64,
    },
}

/// In-flight random access towards a handover target.
struct RachExec {
    target: usize,
    ssb_beam: TxBeamIndex,
    rx_beam: BeamId,
    proc: RachProcedure,
    try_pending: bool,
    /// First preamble actually transmitted — opens the RACH phase of the
    /// causal attribution timeline.
    first_tx: Option<SimTime>,
    /// Latest Msg3 transmission — opens the backhaul window. Overwritten
    /// on retransmission (the last Msg3 is the one the Msg4 answers).
    msg3_at: Option<SimTime>,
    /// Backhaul span (queue wait + context fetch) the target responder
    /// embedded in the Msg4 delay for this UE's winning Msg3, in nanos.
    backhaul_ns: u64,
}

/// One mobile of the fleet. The per-instant hot state a measurement
/// sweep touches — the pose memo and the link scratch — lives
/// struct-of-arrays in [`FleetWorld`] (`poses`, `links`), parallel to
/// the `ues` vector, so a shard's sweep is one cache-friendly pass; this
/// struct keeps the colder protocol/accounting state.
struct Ue {
    spec: UeSpec,
    uid: UeId,
    mobility: BoxedModel,
    rach_rng: StdRng,
    fault_rng: StdRng,
    proto: Proto,
    serving: usize,
    /// Transmit beam each cell currently uses towards this UE.
    bs_tx_beam: Vec<TxBeamIndex>,
    rlf_count: u32,
    rlf_declared: bool,
    rach: Option<RachExec>,
    handover_reason: Option<HandoverReason>,
    trigger_at: Option<SimTime>,
    rlf_at: Option<SimTime>,
    /// Targeted events (`UeRx`/`BsRx`/`AssistApply`/`RachTry`) currently
    /// in this shard's queue for this UE. A UE may only migrate between
    /// tiles when this is zero — nothing in flight references it.
    pending_events: u32,
    /// When this UE last published an attempt to the exact-contention
    /// stage; migration additionally waits until the stage has resolved
    /// past `last_publish + AIR_DELAY` so no reply can still be holding.
    last_publish: SimTime,
    // Banked accounting (survives protocol re-anchoring).
    handovers: u64,
    rlfs: u64,
    rach_attempts: u64,
    dwells_banked: u64,
    nrba_banked: u64,
    /// Raw interruption samples — retained (and allocated) only under
    /// [`FleetConfig::exact_ecdfs`]; the streaming default records into
    /// the shard's constant-memory sketches instead, so fleet metric
    /// memory stays O(cells × buckets), not O(samples).
    interruptions_ms: Vec<f64>,
}

impl Ue {
    fn context_token(&self) -> u64 {
        match self.spec.protocol {
            ProtocolKind::SilentTracker => CONTEXT_TOKEN_BASE | u64::from(self.uid.0),
            ProtocolKind::Reactive => 0,
        }
    }

    /// Fold the live protocol's counters into the banked totals.
    fn bank_proto(&mut self) {
        self.dwells_banked += self.proto.search_dwells();
        if let Some(st) = self.proto.stats() {
            self.nrba_banked += st.nrba_switches;
        }
    }
}

struct FleetWorld {
    cfg: FleetConfig,
    /// Shared across every shard of the fleet (cells, codebooks,
    /// environment) — built once by the runner, never cloned per shard
    /// or per UE.
    sites: Arc<Sites>,
    ue_codebook: Arc<Codebook>,
    /// Precomputed receiver thresholds, one per world instead of a
    /// `log10` per probe.
    cal: RadioCal,
    /// Batched-sweep scratch: one slot per transmit beam of the cell
    /// being swept. Shared by all UEs of the shard (used transiently
    /// within one sweep).
    sweep_scratch: Vec<Dbm>,
    /// UEs ascending by global id, with their hot per-instant state
    /// split struct-of-arrays alongside: `poses[i]` memoizes UE `i`'s
    /// pose per instant (mobility models are trigonometry-heavy) and
    /// `links[i]` is its link scratch. The three vectors move in
    /// lockstep on migration.
    ues: Vec<Ue>,
    poses: Vec<(SimTime, Pose)>,
    links: Vec<LinkSet>,
    /// Cell indices sorted by street-axis abscissa — the interest query
    /// index (binary-search the x-window, filter by true distance).
    cells_by_x: Vec<(f64, u16)>,
    /// Reusable scratch for one UE's freshly computed interest set.
    interest_scratch: Vec<u16>,
    /// UEs admitted from / handed to other tiles at migration barriers.
    migrations_in: u64,
    migrations_out: u64,
    responders: Vec<RachResponder>,
    /// Distinct PRACH occasions (by instant) with ≥ 1 transmission, per cell.
    occasions_used: Vec<BTreeSet<u64>>,
    preambles_tx: Vec<u64>,
    handovers_in: Vec<u64>,
    burst_period: SimDuration,
    /// Exact-contention mode: BS-bound RACH PDUs are published to the
    /// shared cross-shard stage instead of the per-shard `responders`
    /// (which then stay idle for the whole run).
    exact: bool,
    shard_idx: u32,
    /// Attempts published this epoch, drained at each barrier.
    outbox: Vec<RachAttemptMsg>,
    telemetry: Telemetry,
}

/// Streaming per-shard telemetry. Every field is constant-size: the
/// sketches are fixed bucket arrays, the ring is bounded by its
/// compaction cap, and the rest are scalars — nothing grows with the
/// number of recorded samples.
struct Telemetry {
    /// Run-level interruption sketches (the streaming replacement for
    /// the raw per-UE sample vectors), one per protocol arm.
    soft: QuantileSketch,
    hard: QuantileSketch,
    /// Per-cause interruption ledgers, one map per protocol arm —
    /// constant memory (O(causes × buckets)), canonical merge order.
    soft_causes: SketchMap,
    hard_causes: SketchMap,
    /// Per-arm (soft=0, hard=1), per-cause recorded interruption totals
    /// and their phase-decomposition sums, accumulated in recording
    /// order. Each summand pair is bit-equal by construction, so the
    /// accumulated pairs stay bit-equal — `collect` debug-asserts it.
    cause_totals: [[f64; 5]; 2],
    cause_phase_sums: [[f64; 5]; 2],
    /// Run-level per-cause interruption counts — the conservation ledger
    /// the timeline slice cause counts must sum to.
    cause_counts_run: [u64; 5],
    /// Worst interruptions of the run (bounded, canonically ordered) —
    /// the exemplars `--explain-top` and the fleet summary print.
    worst: Vec<InterruptionBreakdown>,
    /// Time-sliced snapshots, armed by [`FleetConfig::snapshot_interval`].
    ring: Option<SnapshotRing>,
    /// The slice accumulating since the last sealed boundary.
    cur: SnapshotSlice,
    /// Responder-counter baseline at the last sealed boundary:
    /// (preambles heard, collisions, contention losses, backhaul wait ns).
    /// Sealing records the delta, so slices stay differences not totals.
    last_resp: (u64, u64, u64, u64),
    /// Steady-state allocation violations: how often a reused scratch
    /// buffer (sweep scratch, exact-mode outbox) actually had to grow.
    scratch_growth: u64,
}

/// Sum the per-cell responder counters that feed snapshot slices.
fn responder_sum(responders: &[RachResponder]) -> (u64, u64, u64, u64) {
    let mut s = (0u64, 0u64, 0u64, 0u64);
    for r in responders {
        let st = r.stats();
        s.0 += st.preambles_heard;
        s.1 += st.collisions;
        s.2 += st.contention_losses;
        s.3 += st.backhaul_queue_wait.as_nanos();
    }
    s
}

/// The BS responder timing shared by the per-shard responders (legacy
/// mode) and the cross-shard stage (exact mode) — one source of truth so
/// the two paths model the same base station.
pub(crate) fn responder_config(base: &ScenarioConfig) -> ResponderConfig {
    ResponderConfig {
        rar_delay: MSG2_DELAY,
        msg4_delay: MSG4_PROCESSING,
        backhaul_latency: base.backhaul_latency,
        ..ResponderConfig::nr_default()
    }
}

/// Build the mobility model of one UE from its per-UE spawn stream.
fn build_mobility(spec: &UeSpec, rng: &mut StdRng, cfg: &FleetConfig) -> (BoxedModel, Vec2) {
    let x = cfg.spawn_x.0 + rng.random::<f64>() * (cfg.spawn_x.1 - cfg.spawn_x.0);
    let y = cfg.spawn_y.0 + rng.random::<f64>() * (cfg.spawn_y.1 - cfg.spawn_y.0);
    let pos = Vec2::new(x, y);
    // Walkers and vehicles head up or down the street.
    let heading = if rng.random::<f64>() < 0.5 {
        Radians(0.0)
    } else {
        Radians(std::f64::consts::PI)
    };
    let phase = rng.random::<f64>() * std::f64::consts::TAU;
    let model: BoxedModel = match spec.mobility {
        MobilityKind::Walk => Box::new(HumanWalk::paper_walk(pos, heading).with_phase(phase)),
        MobilityKind::Vehicular => Box::new(Vehicular::paper_vehicular(pos, heading)),
        MobilityKind::Rotation => Box::new(DeviceRotation::paper_rotation(pos, Radians(phase))),
        MobilityKind::WalkAndTurn => {
            let walk = HumanWalk::paper_walk(pos, heading).with_phase(phase);
            let turn = TurnAt {
                start_s: 0.3 + rng.random::<f64>(),
                turn_rad: std::f64::consts::FRAC_PI_2,
                rate_rad_s: 120f64.to_radians(),
            };
            Box::new(Composite::new(walk, turn))
        }
    };
    (model, pos)
}

/// Compute one UE's interest set into `out`: cells within `radius` of
/// `pos` (x-window binary search over `cells_by_x`, then a true distance
/// check), force-including the serving cell and any in-flight RACH
/// target, sorted ascending and deduplicated.
#[allow(clippy::too_many_arguments)]
fn interest_cells(
    cells_by_x: &[(f64, u16)],
    base: &ScenarioConfig,
    pos: Vec2,
    radius: f64,
    serving: usize,
    rach_target: Option<usize>,
    out: &mut Vec<u16>,
) {
    out.clear();
    let lo = cells_by_x.partition_point(|&(x, _)| x < pos.x - radius);
    for &(_, cell) in &cells_by_x[lo..] {
        let p = base.cells[cell as usize].position;
        if p.x > pos.x + radius {
            break;
        }
        if p.distance(pos) <= radius {
            out.push(cell);
        }
    }
    out.push(serving as u16);
    if let Some(t) = rach_target {
        out.push(t as u16);
    }
    out.sort_unstable();
    out.dedup();
}

/// Build the shared static side of a fleet: one [`Sites`] and one UE
/// codebook behind `Arc`s, handed to every shard (and from there to every
/// UE's protocol instance) instead of being rebuilt/cloned per shard.
pub fn build_world(cfg: &FleetConfig) -> (Arc<Sites>, Arc<Codebook>) {
    let base = &cfg.base;
    let mut sites = Sites::new(
        base.cells.clone(),
        base.environment.clone(),
        base.radio,
        base.channel,
    );
    if let Some(dynamics) = &base.dynamics {
        // One blocker field shared by every UE of every shard: the same
        // bus shadows every link it crosses.
        sites = sites.with_dynamics(Arc::clone(dynamics));
    }
    let sites = Arc::new(sites);
    let ue_codebook = Arc::new(
        base.custom_ue_codebook
            .clone()
            .unwrap_or_else(|| Codebook::for_class(base.ue_codebook)),
    );
    (sites, ue_codebook)
}

/// Run shard `shard_idx` of the fleet to completion against the shared
/// static world from [`build_world`] — the legacy (per-shard contention)
/// path: one uninterrupted run to the deadline.
pub fn run_shard(
    cfg: &FleetConfig,
    shard_idx: usize,
    sites: &Arc<Sites>,
    ue_codebook: &Arc<Codebook>,
) -> ShardOutcome {
    let specs = cfg.shard_specs(shard_idx);
    run_shard_specs(cfg, shard_idx, specs, sites, ue_codebook)
}

/// [`run_shard`] with the shard's population already partitioned out
/// (the runner partitions the whole fleet once instead of rebuilding
/// and filtering the full spec vector per shard).
pub fn run_shard_specs(
    cfg: &FleetConfig,
    shard_idx: usize,
    specs: Vec<UeSpec>,
    sites: &Arc<Sites>,
    ue_codebook: &Arc<Codebook>,
) -> ShardOutcome {
    let mut sim = ShardSim::new(cfg, shard_idx, specs, sites, ue_codebook);
    sim.run_until(SimTime::ZERO + cfg.base.duration);
    sim.finish()
}

/// One shard packaged for stepped execution. The legacy path drives it
/// to the deadline in a single [`ShardSim::run_until`]; the
/// exact-contention runner advances all shards in epoch steps, draining
/// each shard's published RACH attempts ([`ShardSim::take_outbox`]) at
/// every occasion barrier and fanning resolved replies back in
/// ([`ShardSim::deliver`]).
pub(crate) struct ShardSim {
    world: FleetWorld,
    ex: Executive<Ev>,
    budget_left: u64,
    budget_exhausted: bool,
}

/// One UE in transit between tile shards: the cold state plus its
/// struct-of-arrays companions, moved as a unit so every RNG stream,
/// fading process and protocol machine continues bit-exactly on the
/// destination shard.
pub(crate) struct Migrant {
    ue: Ue,
    pose: (SimTime, Pose),
    links: LinkSet,
}

impl ShardSim {
    pub(crate) fn new(
        cfg: &FleetConfig,
        shard_idx: usize,
        specs: Vec<UeSpec>,
        sites: &Arc<Sites>,
        ue_codebook: &Arc<Codebook>,
    ) -> ShardSim {
        let base = &cfg.base;
        let streams = RngStreams::new(base.seed);
        let sites = Arc::clone(sites);
        let ue_codebook = Arc::clone(ue_codebook);

        let mut cells_by_x: Vec<(f64, u16)> = base
            .cells
            .iter()
            .enumerate()
            .map(|(i, c)| (c.position.x, i as u16))
            .collect();
        cells_by_x.sort_by(|a, b| a.partial_cmp(b).expect("finite cell positions"));

        let mut poses = Vec::with_capacity(specs.len());
        let mut links = Vec::with_capacity(specs.len());
        let ues: Vec<Ue> = specs
            .into_iter()
            .map(|spec| {
                let mut spawn_rng = streams.stream_indexed("fleet-spawn", spec.id);
                let (mobility, _) = build_mobility(&spec, &mut spawn_rng, cfg);
                let pose0 = mobility.pose_at(0.0);
                let serving = nearest_cell(&base.cells, pose0.position);
                let serving_rx = ue_codebook
                    .best_beam_towards(pose0.local_bearing_to(base.cells[serving].position));
                let bs_tx_beam = (0..sites.len())
                    .map(|i| sites.best_tx_beam_towards(i, pose0.position))
                    .collect();
                let uid = UeId(spec.id as u32 + 1);
                let mut proto = Proto::new(
                    spec.protocol,
                    base.tracker,
                    uid,
                    CellId(serving as u16),
                    Arc::clone(&ue_codebook),
                    serving_rx,
                );
                if cfg.record_traces {
                    proto.start_recording();
                }
                poses.push((SimTime::ZERO, pose0));
                links.push(match cfg.interest_radius_m {
                    None => LinkSet::for_ue(&streams, base.channel, sites.len(), spec.id),
                    Some(radius) => {
                        let mut set =
                            LinkSet::for_ue_interest(&streams, base.channel, sites.len(), spec.id);
                        let mut cells = Vec::new();
                        interest_cells(
                            &cells_by_x,
                            base,
                            pose0.position,
                            radius,
                            serving,
                            None,
                            &mut cells,
                        );
                        set.set_interest(&cells);
                        set
                    }
                });
                Ue {
                    uid,
                    mobility,
                    rach_rng: streams.stream_indexed("fleet-rach", spec.id),
                    fault_rng: streams.stream_indexed("fleet-fault", spec.id),
                    proto,
                    serving,
                    bs_tx_beam,
                    rlf_count: 0,
                    rlf_declared: false,
                    rach: None,
                    handover_reason: None,
                    trigger_at: None,
                    rlf_at: None,
                    pending_events: 0,
                    last_publish: SimTime::ZERO,
                    handovers: 0,
                    rlfs: 0,
                    rach_attempts: 0,
                    dwells_banked: 0,
                    nrba_banked: 0,
                    interruptions_ms: Vec::new(),
                    spec,
                }
            })
            .collect();
        debug_assert!(
            ues.windows(2).all(|w| w[0].spec.id < w[1].spec.id),
            "shard population must ascend by global id"
        );

        let n_cells = sites.len();
        let burst_period = base.ssb(0).burst_period;
        let burst_active = base.ssb(0).burst_active();
        let world = FleetWorld {
            sites,
            ue_codebook,
            cal: base.radio.cal(),
            sweep_scratch: Vec::new(),
            ues,
            poses,
            links,
            cells_by_x,
            interest_scratch: Vec::new(),
            migrations_in: 0,
            migrations_out: 0,
            responders: (0..n_cells)
                .map(|_| RachResponder::new(responder_config(base)))
                .collect(),
            occasions_used: vec![BTreeSet::new(); n_cells],
            preambles_tx: vec![0; n_cells],
            handovers_in: vec![0; n_cells],
            burst_period,
            exact: cfg.exact_contention,
            shard_idx: shard_idx as u32,
            outbox: Vec::new(),
            telemetry: Telemetry {
                soft: QuantileSketch::latency_ms(),
                hard: QuantileSketch::latency_ms(),
                soft_causes: SketchMap::new(),
                hard_causes: SketchMap::new(),
                cause_totals: [[0.0; 5]; 2],
                cause_phase_sums: [[0.0; 5]; 2],
                cause_counts_run: [0; 5],
                worst: Vec::new(),
                ring: cfg
                    .snapshot_interval
                    .map(|dt| SnapshotRing::new(dt, SnapshotRing::DEFAULT_CAP)),
                cur: SnapshotSlice::new(),
                last_resp: (0, 0, 0, 0),
                scratch_growth: 0,
            },
            cfg: cfg.clone(),
        };

        let mut ex: Executive<Ev> = Executive::new();
        ex.schedule_at(SimTime::ZERO, Ev::Burst { k: 0 });
        ex.schedule_at(
            SimTime::ZERO + burst_active + SimDuration::from_millis(1),
            Ev::DwellEnd,
        );
        ex.schedule_in(SimDuration::from_millis(1), Ev::ServingMeas);
        ex.schedule_in(SimDuration::from_micros(500), Ev::Tick);
        if let Some(dt) = cfg.snapshot_interval {
            ex.schedule_at(SimTime::ZERO + dt, Ev::Snapshot { k: 1 });
        }

        ShardSim {
            world,
            ex,
            budget_left: cfg.event_budget,
            budget_exhausted: false,
        }
    }

    /// Process every pending event with timestamp ≤ `limit` (the DES
    /// clock parks at `limit`, so repeated bounded runs are equivalent
    /// to one long run). The per-shard event budget is cumulative across
    /// calls; once exhausted the shard stops advancing but stays a valid
    /// barrier participant.
    pub(crate) fn run_until(&mut self, limit: SimTime) {
        if self.budget_exhausted {
            return;
        }
        self.ex.event_budget = self.budget_left;
        let before = self.ex.events_processed();
        let world = &mut self.world;
        let reason = self.ex.run(limit, |ex, now, ev| {
            world.dispatch(ex, now, ev);
            Control::Continue
        });
        self.budget_left = self
            .budget_left
            .saturating_sub(self.ex.events_processed() - before);
        if reason == StopReason::Budget {
            self.budget_exhausted = true;
        }
    }

    /// Drain the attempts published since the last barrier into the
    /// caller's mailbox (capacity of both vectors is retained).
    pub(crate) fn take_outbox(&mut self, into: &mut Vec<RachAttemptMsg>) {
        into.append(&mut self.world.outbox);
    }

    /// Schedule one resolved reply as a receive event. The stage
    /// guarantees `deliver_at` lies strictly beyond the barrier horizon,
    /// i.e. in this shard's future.
    pub(crate) fn deliver(&mut self, r: &RachReply) {
        let Some(i) = self.world.idx_of(r.ue_global as u32) else {
            debug_assert!(
                false,
                "reply routed to a shard not owning UE {}",
                r.ue_global
            );
            return;
        };
        // Exact mode resolves Msg3 at the shared stage, so the backhaul
        // span embedded in the Msg4 delay arrives with the reply; stamp
        // it on the in-flight procedure for causal attribution. Last
        // write wins — a UE has at most one Msg3 outstanding, so a
        // dropped Msg4's retry simply restamps.
        if matches!(r.pdu, Pdu::ContentionResolution { .. }) {
            if let Some(rach) = self.world.ues[i].rach.as_mut() {
                rach.backhaul_ns = r.backhaul_ns;
            }
        }
        self.world.ues[i].pending_events += 1;
        self.ex.schedule_at(
            r.deliver_at,
            Ev::UeRx {
                ue: r.ue_global as u32,
                cell: r.cell,
                tx_beam: r.tx_beam,
                pdu: r.pdu.clone(),
            },
        );
    }

    /// Pull out every UE whose trajectory has crossed into another tile
    /// and which is *quiescent* — no in-flight RACH procedure, no
    /// targeted event in the queue, and (exact mode) every published
    /// attempt already resolved by the stage (`resolved_to` is the
    /// horizon the stage has resolved up to; pass `boundary` in legacy
    /// mode). Returns `(destination shard, migrant)` pairs ascending by
    /// global id. `group_of[shard]` is each shard's contention group: a
    /// UE whose destination lies in a different group is deferred (the
    /// reachable-cell travel margin keeps its links covered until the
    /// next boundary).
    pub(crate) fn extract_migrants(
        &mut self,
        boundary: SimTime,
        tiles: &crate::deployment::TilePartition,
        group_of: &[u32],
        resolved_to: SimTime,
    ) -> Vec<(usize, Migrant)> {
        let world = &mut self.world;
        let here = world.shard_idx as usize;
        let mut picked: Vec<(usize, usize)> = Vec::new(); // (index, dest)
        for i in 0..world.ues.len() {
            let pose = world.pose(i, boundary);
            let dest = tiles.tile_of_x(pose.position.x);
            if dest == here {
                continue;
            }
            let ue = &world.ues[i];
            let quiescent = ue.rach.is_none()
                && ue.pending_events == 0
                && (!world.exact || ue.last_publish + AIR_DELAY <= resolved_to);
            if quiescent && group_of[dest] == group_of[here] {
                picked.push((i, dest));
            }
        }
        let mut out = Vec::with_capacity(picked.len());
        for &(i, dest) in picked.iter().rev() {
            out.push((
                dest,
                Migrant {
                    ue: world.ues.remove(i),
                    pose: world.poses.remove(i),
                    links: world.links.remove(i),
                },
            ));
        }
        out.reverse();
        world.migrations_out += out.len() as u64;
        out
    }

    /// Admit a migrant extracted from another tile, keeping the UE
    /// vector (and its struct-of-arrays companions) ascending by global
    /// id. The UE's RNG streams, protocol state and link processes
    /// arrive intact — nothing is re-derived.
    pub(crate) fn admit(&mut self, m: Migrant) {
        let world = &mut self.world;
        let at = world
            .ues
            .binary_search_by_key(&m.ue.spec.id, |u| u.spec.id)
            .expect_err("admitting a UE the shard already owns");
        world.ues.insert(at, m.ue);
        world.poses.insert(at, m.pose);
        world.links.insert(at, m.links);
        world.migrations_in += 1;
    }

    /// Distinct serving cells of this shard's UEs (sorted). Used by the
    /// runner right after construction to close the contention groups
    /// over initial attachments: a UE spawned in a coverage gap may be
    /// served by a cell outside its tile's reachable set, and the group
    /// partition must account for that cell too.
    pub(crate) fn serving_cells(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.world.ues.iter().map(|u| u.serving).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    pub(crate) fn finish(self) -> ShardOutcome {
        let pending = self.ex.pending() as u64;
        let pending_peak = self.ex.pending_peak() as u64;
        self.world.collect(
            self.ex.events_processed(),
            self.budget_exhausted,
            pending,
            pending_peak,
        )
    }
}

impl FleetWorld {
    /// Local index of the UE with global id `gid` (the UE vector is
    /// always ascending by global id, across migrations).
    fn idx_of(&self, gid: u32) -> Option<usize> {
        self.ues
            .binary_search_by_key(&u64::from(gid), |u| u.spec.id)
            .ok()
    }

    fn gid(&self, i: usize) -> u32 {
        self.ues[i].spec.id as u32
    }

    /// UE `i`'s pose at `now`, memoized per instant in the
    /// struct-of-arrays pose memo.
    fn pose(&mut self, i: usize, now: SimTime) -> Pose {
        let memo = &mut self.poses[i];
        if memo.0 != now {
            *memo = (now, self.ues[i].mobility.pose_at(now.as_secs_f64()));
        }
        memo.1
    }

    /// Resolve a targeted event's global id and settle its pending-event
    /// account. `None` only if the UE migrated with an event in flight —
    /// which the quiescence guard forbids, hence the debug assert.
    fn target(&mut self, gid: u32) -> Option<usize> {
        let i = self.idx_of(gid);
        debug_assert!(i.is_some(), "targeted event for absent UE {gid}");
        if let Some(i) = i {
            let ue = &mut self.ues[i];
            debug_assert!(ue.pending_events > 0, "pending-event underflow");
            ue.pending_events = ue.pending_events.saturating_sub(1);
        }
        i
    }

    fn dispatch(&mut self, ex: &mut Executive<Ev>, now: SimTime, ev: Ev) {
        match ev {
            Ev::Burst { k } => {
                for i in 0..self.ues.len() {
                    self.on_burst_ue(ex, now, i);
                }
                ex.schedule_at(
                    SimTime::ZERO + self.burst_period * (k + 1),
                    Ev::Burst { k: k + 1 },
                );
            }
            Ev::DwellEnd => {
                for i in 0..self.ues.len() {
                    let actions = self.ues[i].proto.handle(Input::DwellComplete { at: now });
                    self.apply_actions(ex, now, i, actions);
                }
                ex.schedule_in(self.burst_period, Ev::DwellEnd);
            }
            Ev::ServingMeas => {
                if !self.cfg.base.gaps.in_gap(now) {
                    for i in 0..self.ues.len() {
                        self.on_serving_meas_ue(ex, now, i);
                    }
                }
                ex.schedule_in(self.cfg.base.serving_meas_period, Ev::ServingMeas);
            }
            Ev::Tick => {
                for i in 0..self.ues.len() {
                    let actions = self.ues[i].proto.handle(Input::Tick { at: now });
                    self.apply_actions(ex, now, i, actions);
                    self.poll_rach(ex, now, i);
                }
                ex.schedule_in(SimDuration::from_millis(1), Ev::Tick);
            }
            Ev::UeRx {
                ue,
                cell,
                tx_beam,
                pdu,
            } => {
                if let Some(i) = self.target(ue) {
                    self.on_ue_rx(ex, now, i, cell as usize, tx_beam, pdu);
                }
            }
            Ev::BsRx { ue, cell, pdu } => {
                if let Some(i) = self.target(ue) {
                    self.on_bs_rx(ex, now, i, cell as usize, pdu);
                }
            }
            Ev::AssistApply { ue, cell, tx_beam } => {
                if let Some(i) = self.target(ue) {
                    let cell = cell as usize;
                    self.ues[i].bs_tx_beam[cell] = tx_beam;
                    self.ues[i].pending_events += 1;
                    ex.schedule_in(
                        AIR_DELAY,
                        Ev::UeRx {
                            ue,
                            cell: cell as u16,
                            tx_beam,
                            pdu: Pdu::BeamSwitchCommand {
                                cell: CellId(cell as u16),
                                tx_beam,
                            },
                        },
                    );
                }
            }
            Ev::RachTry { ue } => {
                if let Some(i) = self.target(ue) {
                    self.on_rach_try(ex, now, i);
                }
            }
            Ev::Snapshot { k } => {
                // Depth sampled before the next boundary is armed, so the
                // chain itself never inflates the gauge.
                let depth = ex.pending() as u64;
                self.seal_slice(now, depth);
                let dt = self
                    .cfg
                    .snapshot_interval
                    .expect("Snapshot event only armed with an interval");
                if dt * (k + 1) <= self.cfg.base.duration {
                    ex.schedule_at(SimTime::ZERO + dt * (k + 1), Ev::Snapshot { k: k + 1 });
                }
            }
        }
    }

    /// Seal the accumulating slice at a snapshot boundary (or at the end
    /// of the run, for a partial tail): fold in the delta of the
    /// responder counters since the previous boundary, sample the two
    /// gauges, and push the slice into the ring. In exact-contention
    /// mode the per-shard responders are idle, so the responder-side
    /// fields stay zero here and the shared stage's slice ring supplies
    /// them at merge time.
    fn seal_slice(&mut self, now: SimTime, event_queue_depth: u64) {
        if self.telemetry.ring.is_none() {
            return;
        }
        let mut slice = std::mem::take(&mut self.telemetry.cur);
        let sum = responder_sum(&self.responders);
        let last = self.telemetry.last_resp;
        slice.preambles_heard = sum.0 - last.0;
        slice.collisions = sum.1 - last.1;
        slice.contention_losses = sum.2 - last.2;
        slice.backhaul_wait_us = (sum.3 - last.3) / 1_000;
        self.telemetry.last_resp = sum;
        slice.backhaul_backlog_us = self
            .responders
            .iter()
            .map(|r| r.backhaul_backlog(now).as_nanos() / 1_000)
            .sum();
        slice.event_queue_depth = event_queue_depth;
        self.telemetry.ring.as_mut().unwrap().push(slice);
    }

    // ----- physics ----------------------------------------------------------

    /// Downlink RSS from `cell` to UE `i`; channels are advanced lazily to
    /// `now` on first use, which keeps per-event cost proportional to the
    /// links actually sampled.
    fn link_rss(
        &mut self,
        i: usize,
        now: SimTime,
        cell: usize,
        tx_beam: TxBeamIndex,
        rx_beam: BeamId,
    ) -> Option<Dbm> {
        let pose = self.pose(i, now);
        let links = &mut self.links[i];
        links.step_to(now);
        links.rss(&self.sites, cell, tx_beam, pose, &self.ue_codebook, rx_beam)
    }

    fn delivery_ok(&mut self, i: usize, rss: Option<Dbm>) -> bool {
        let Some(r) = rss else { return false };
        let p = self.cal.packet_success_probability(self.cal.snr(r));
        self.ues[i].rach_rng.random::<f64>() < p
    }

    // ----- event handlers ---------------------------------------------------

    /// Recompute UE `i`'s interest set from its current position
    /// (no-op unless an interest radius is configured). Runs at each SSB
    /// burst — the natural refresh cadence, since bursts are when links
    /// are measured — and always force-includes the serving cell and any
    /// in-flight RACH target so active procedures never lose their link.
    fn refresh_interest(&mut self, i: usize, now: SimTime) {
        let Some(radius) = self.cfg.interest_radius_m else {
            return;
        };
        let pose = self.pose(i, now);
        let ue = &self.ues[i];
        let target = ue.rach.as_ref().map(|r| r.target);
        let mut scratch = std::mem::take(&mut self.interest_scratch);
        interest_cells(
            &self.cells_by_x,
            &self.cfg.base,
            pose.position,
            radius,
            ue.serving,
            target,
            &mut scratch,
        );
        self.links[i].set_interest(&scratch);
        self.interest_scratch = scratch;
    }

    fn on_burst_ue(&mut self, ex: &mut Executive<Ev>, now: SimTime, i: usize) {
        self.refresh_interest(i, now);
        // Serving link: probe adjacent receive beams (snapshot traced
        // once, both probes reuse it).
        let serving = self.ues[i].serving;
        let serving_rx = self.ues[i].proto.serving_rx_beam();
        let tx = self.ues[i].bs_tx_beam[serving];
        for b in self.ue_codebook.adjacent(serving_rx) {
            if let Some(r) = self.link_rss(i, now, serving, tx, b) {
                if self.cal.detectable(r) {
                    let actions = self.ues[i].proto.handle(Input::ServingProbe {
                        at: now,
                        rx_beam: b,
                        rss: r,
                    });
                    self.apply_actions(ex, now, i, actions);
                }
            }
        }

        // Neighbor cells, inside the measurement gap: each cell's whole
        // SSB sweep is one batched evaluation (single trace, one pass
        // over the rays), then the SSBs feed the protocol in beam order —
        // identical inputs and RNG draws to per-beam probing, without the
        // N-beam re-traces. Only the interest set is swept: a cell out
        // of radio range costs zero traces (with no radius configured
        // the active set is every cell, the pre-interest behaviour).
        if self.cfg.base.gaps.in_gap(now) {
            let gap_beam = self.ues[i].proto.gap_rx_beam();
            for ci in 0.. {
                let cell = match self.links[i].active_cells().get(ci) {
                    Some(&c) => c as usize,
                    None => break,
                };
                let serving_now = self.ues[i].serving;
                if cell == serving_now && !self.post_rlf_search(i) {
                    continue;
                }
                let n_beams = self.cfg.base.cells[cell].n_tx_beams as usize;
                if n_beams > self.sweep_scratch.capacity() {
                    self.telemetry.scratch_growth += 1;
                }
                self.sweep_scratch.resize(n_beams, Dbm(f64::NEG_INFINITY));
                let pose = self.pose(i, now);
                let links = &mut self.links[i];
                links.step_to(now);
                if !links.rss_tx_sweep(
                    &self.sites,
                    cell,
                    pose,
                    &self.ue_codebook,
                    gap_beam,
                    &mut self.sweep_scratch[..n_beams],
                ) {
                    continue;
                }
                for tx_beam in 0..self.cfg.base.cells[cell].n_tx_beams {
                    let r = self.sweep_scratch[tx_beam as usize];
                    let usable = if self.ues[i].proto.tracked().is_none() {
                        self.cal.acquirable(r)
                    } else {
                        self.cal.detectable(r)
                    };
                    if usable {
                        let actions = self.ues[i].proto.handle(Input::NeighborSsb {
                            at: now,
                            cell: CellId(cell as u16),
                            tx_beam,
                            rx_beam: gap_beam,
                            rss: r,
                        });
                        self.apply_actions(ex, now, i, actions);
                    }
                }
            }
        }
    }

    fn post_rlf_search(&self, i: usize) -> bool {
        self.ues[i].rlf_declared && matches!(self.ues[i].spec.protocol, ProtocolKind::Reactive)
    }

    fn on_serving_meas_ue(&mut self, ex: &mut Executive<Ev>, now: SimTime, i: usize) {
        if self.ues[i].rlf_declared && self.ues[i].rach.is_none() {
            return; // disconnected (reactive arm)
        }
        let serving = self.ues[i].serving;
        let tx = self.ues[i].bs_tx_beam[serving];
        let rx = self.ues[i].proto.serving_rx_beam();
        let r = self.link_rss(i, now, serving, tx, rx);
        match r {
            Some(v) if self.cal.detectable(v) => {
                self.ues[i].rlf_count = 0;
                let actions = self.ues[i]
                    .proto
                    .handle(Input::ServingRss { at: now, rss: v });
                self.apply_actions(ex, now, i, actions);
            }
            _ => {
                let ue = &mut self.ues[i];
                ue.rlf_count += 1;
                let needed = (self.cfg.base.tracker.serving_timeout.as_nanos()
                    / self.cfg.base.serving_meas_period.as_nanos())
                .max(2) as u32;
                if ue.rlf_count >= needed && !ue.rlf_declared {
                    ue.rlf_declared = true;
                    ue.rlfs += 1;
                    self.telemetry.cur.rlfs += 1;
                    ue.rlf_at = Some(now);
                    let actions = ue.proto.handle(Input::ServingLinkLost { at: now });
                    self.apply_actions(ex, now, i, actions);
                }
            }
        }
    }

    fn refresh_rach_beams(&mut self, i: usize) {
        let tracked = self.ues[i].proto.tracked();
        if let (Some(rach), Some((cell, tx, rx))) = (&mut self.ues[i].rach, tracked) {
            if cell.0 as usize == rach.target {
                rach.ssb_beam = tx;
                rach.rx_beam = rx;
            }
        }
    }

    fn on_ue_rx(
        &mut self,
        ex: &mut Executive<Ev>,
        now: SimTime,
        i: usize,
        cell: usize,
        tx_beam: TxBeamIndex,
        pdu: Pdu,
    ) {
        self.refresh_rach_beams(i);
        let rx_beam = match &self.ues[i].rach {
            Some(r) if r.target == cell => r.rx_beam,
            _ => self.ues[i].proto.serving_rx_beam(),
        };
        let r = self.link_rss(i, now, cell, tx_beam, rx_beam);
        if !self.delivery_ok(i, r) {
            return;
        }
        let fault = self.cfg.base.fault.drop_rach_probability;
        if self.ues[i].fault_rng.random::<f64>() < fault
            && matches!(
                pdu,
                Pdu::RachResponse { .. } | Pdu::ContentionResolution { .. }
            )
        {
            return;
        }
        if self.ues[i].rach.as_ref().is_some_and(|r| r.target == cell) {
            let ue = &mut self.ues[i];
            let rach = ue.rach.as_mut().unwrap();
            let action = rach.proc.on_pdu(now, &pdu);
            let connected = rach.proc.state() == RachState::Connected;
            if let st_mac::rach::RachAction::Transmit(msg3) = action {
                rach.msg3_at = Some(now);
                self.send_to_bs(ex, now, i, cell, msg3);
            }
            if connected {
                self.complete_handover(now, i);
            }
            return;
        }
        let actions = self.ues[i]
            .proto
            .handle(Input::FromServing { at: now, pdu });
        self.apply_actions(ex, now, i, actions);
    }

    fn on_bs_rx(&mut self, ex: &mut Executive<Ev>, now: SimTime, i: usize, cell: usize, pdu: Pdu) {
        match pdu {
            Pdu::BeamSwitchRequest { .. } => {
                if self.ues[i].fault_rng.random::<f64>()
                    < self.cfg.base.fault.drop_assist_probability
                {
                    return;
                }
                let pose = self.pose(i, now);
                let best = self.sites.best_tx_beam_towards(cell, pose.position);
                let delay =
                    self.cfg.base.assist_processing + self.cfg.base.fault.assist_extra_delay;
                self.ues[i].pending_events += 1;
                ex.schedule_in(
                    delay,
                    Ev::AssistApply {
                        ue: self.gid(i),
                        cell: cell as u16,
                        tx_beam: best,
                    },
                );
            }
            Pdu::RachPreamble { preamble, ssb_beam } => {
                let distance = self
                    .pose(i, now)
                    .position
                    .distance(self.cfg.base.cells[cell].position);
                if let Some(plan) =
                    self.responders[cell].on_preamble(now, preamble, ssb_beam, distance)
                {
                    self.ues[i].pending_events += 1;
                    ex.schedule_in(
                        plan.delay,
                        Ev::UeRx {
                            ue: self.gid(i),
                            cell: cell as u16,
                            tx_beam: plan.tx_beam,
                            pdu: plan.pdu,
                        },
                    );
                }
            }
            Pdu::ConnectionRequest { ue, context_token } => {
                let temp = self.ues[i].rach.as_ref().and_then(|r| r.proc.temp_ue());
                // First Msg3 per temporary id wins contention; a loser's
                // Msg3 goes unanswered and its timer drives the retry.
                if let Some(plan) = self.responders[cell].on_msg3(now, temp, ue, context_token) {
                    // The backhaul span embedded in the Msg4 delay is the
                    // quantity causal attribution charges to the backhaul
                    // phase of this UE's interruption.
                    if let Some(r) = self.ues[i].rach.as_mut() {
                        r.backhaul_ns = (plan.queue_wait + plan.fetch).as_nanos();
                    }
                    let tx_beam = self.ues[i].rach.as_ref().map(|r| r.ssb_beam).unwrap_or(0);
                    self.ues[i].pending_events += 1;
                    ex.schedule_in(
                        plan.delay,
                        Ev::UeRx {
                            ue: self.gid(i),
                            cell: cell as u16,
                            tx_beam,
                            pdu: plan.pdu,
                        },
                    );
                }
            }
            _ => {}
        }
    }

    fn send_to_bs(
        &mut self,
        ex: &mut Executive<Ev>,
        now: SimTime,
        i: usize,
        cell: usize,
        pdu: Pdu,
    ) {
        self.refresh_rach_beams(i);
        let (tx_beam, rx_beam) = match &self.ues[i].rach {
            Some(r) if r.target == cell => (r.ssb_beam, r.rx_beam),
            _ => (
                self.ues[i].bs_tx_beam[cell],
                self.ues[i].proto.serving_rx_beam(),
            ),
        };
        if let Pdu::RachPreamble { .. } = pdu {
            // Offered-load accounting: every transmission counts, whether
            // or not the BS ends up hearing it.
            self.preambles_tx[cell] += 1;
            self.telemetry.cur.preambles_tx += 1;
            if self.occasions_used[cell].insert(now.as_nanos()) {
                self.telemetry.cur.occasions_used += 1;
            }
        }
        let r = self.link_rss(i, now, cell, tx_beam, rx_beam);
        let faulted = self.ues[i].fault_rng.random::<f64>()
            < self.cfg.base.fault.drop_rach_probability
            && matches!(
                pdu,
                Pdu::RachPreamble { .. } | Pdu::ConnectionRequest { .. }
            );
        if self.delivery_ok(i, r) && !faulted {
            if self.exact {
                if let Some(req) = self.exact_request(now, i, cell, &pdu) {
                    // Published to the shared cross-shard stage instead of
                    // this shard's responder; the resolved reply fans back
                    // as a plain `UeRx` after the next occasion barrier.
                    // The publish instant also pins the UE to this shard
                    // until the stage has resolved past the arrival — the
                    // migration quiescence guard reads it.
                    self.ues[i].last_publish = now;
                    if self.outbox.len() == self.outbox.capacity() {
                        self.telemetry.scratch_growth += 1;
                    }
                    self.outbox.push(req);
                    return;
                }
            }
            self.ues[i].pending_events += 1;
            ex.schedule_in(
                AIR_DELAY,
                Ev::BsRx {
                    ue: self.gid(i),
                    cell: cell as u16,
                    pdu,
                },
            );
        }
    }

    /// Exact-contention publication: capture everything the shared stage
    /// needs to act as this cell's BS at the arrival instant, so the
    /// cross-shard resolution pass never reaches back into shard state.
    /// Returns `None` for PDUs the stage does not own (assist traffic
    /// stays on the local path).
    fn exact_request(
        &self,
        now: SimTime,
        i: usize,
        cell: usize,
        pdu: &Pdu,
    ) -> Option<RachAttemptMsg> {
        let at = now + AIR_DELAY;
        let req = match *pdu {
            Pdu::RachPreamble { preamble, ssb_beam } => {
                // Pose at the arrival instant, computed purely (mobility
                // models are functions of time): the same BS-side distance
                // sample the legacy path takes, without the pose cache.
                let pos = self.ues[i].mobility.pose_at(at.as_secs_f64()).position;
                RachReq::Preamble {
                    preamble,
                    ssb_beam,
                    distance_m: pos.distance(self.cfg.base.cells[cell].position),
                }
            }
            Pdu::ConnectionRequest { ue, context_token } => RachReq::Msg3 {
                temp: self.ues[i].rach.as_ref().and_then(|r| r.proc.temp_ue()),
                ue,
                context_token,
                reply_tx_beam: self.ues[i].rach.as_ref().map(|r| r.ssb_beam).unwrap_or(0),
            },
            _ => return None,
        };
        Some(RachAttemptMsg {
            at,
            ue_global: self.ues[i].spec.id,
            shard: self.shard_idx,
            cell: cell as u16,
            req,
        })
    }

    fn on_rach_try(&mut self, ex: &mut Executive<Ev>, now: SimTime, i: usize) {
        self.refresh_rach_beams(i);
        let Some(rach) = &mut self.ues[i].rach else {
            return;
        };
        rach.try_pending = false;
        if !matches!(
            rach.proc.state(),
            RachState::Idle | RachState::WaitingRar { .. }
        ) {
            return;
        }
        let n_preambles = self.cfg.base.prach.n_preambles.max(1);
        let preamble: u8 = self.ues[i].rach_rng.random_range(0..n_preambles);
        let rach = self.ues[i].rach.as_mut().unwrap();
        let (target, ssb_beam) = (rach.target, rach.ssb_beam);
        match rach.proc.send_preamble(now, ssb_beam, preamble) {
            Ok(msg1) => {
                if rach.first_tx.is_none() {
                    rach.first_tx = Some(now);
                }
                self.ues[i].rach_attempts += 1;
                self.telemetry.cur.rach_attempts += 1;
                self.send_to_bs(ex, now, i, target, msg1);
            }
            Err(_) => self.abort_rach(ex, now, i),
        }
    }

    fn abort_rach(&mut self, ex: &mut Executive<Ev>, now: SimTime, i: usize) {
        self.ues[i].rach = None;
        let actions = self.ues[i].proto.handle(Input::RachFailed { at: now });
        self.apply_actions(ex, now, i, actions);
    }

    fn poll_rach(&mut self, ex: &mut Executive<Ev>, now: SimTime, i: usize) {
        let base_prach = self.cfg.base.prach;
        let Some(rach) = &mut self.ues[i].rach else {
            return;
        };
        let st = rach.proc.poll(now);
        match st {
            RachState::Idle if !rach.try_pending => {
                let ssb = self.cfg.base.ssb(rach.target);
                let at = base_prach.next_occasion(&ssb, now, rach.ssb_beam);
                rach.try_pending = true;
                self.ues[i].pending_events += 1;
                ex.schedule_at(at, Ev::RachTry { ue: self.gid(i) });
            }
            RachState::Failed => self.abort_rach(ex, now, i),
            _ => {}
        }
    }

    fn complete_handover(&mut self, now: SimTime, i: usize) {
        let Some(rach) = self.ues[i].rach.take() else {
            return;
        };
        let hard_penalty = match self.ues[i].spec.protocol {
            ProtocolKind::Reactive => self.cfg.base.hard_handover_penalty,
            ProtocolKind::SilentTracker => SimDuration::ZERO,
        };
        let done_at = now + hard_penalty;
        let ue = &mut self.ues[i];
        let start = match ue.handover_reason {
            Some(HandoverReason::NeighborStronger) => ue.trigger_at,
            _ => ue.rlf_at.or(ue.trigger_at),
        };
        if let Some(s) = start {
            let ms = done_at.since(s).as_millis_f64();
            // Causal attribution: capture the raw handover timeline as
            // marks (recorded into the trace for autopsy refolds) and
            // derive the phase decomposition + root cause. The breakdown
            // total is bit-equal to the `ms` sample recorded below — one
            // interruption, one number, two views.
            let marks = InterruptionMarks {
                ue: ue.spec.id,
                from_cell: ue.serving as u16,
                to_cell: rach.target as u16,
                reason_rlf: !matches!(ue.handover_reason, Some(HandoverReason::NeighborStronger))
                    && ue.rlf_at.is_some(),
                dynamics: self.cfg.base.dynamics.is_some(),
                start: s,
                trigger: ue.trigger_at.unwrap_or(s),
                first_tx: rach.first_tx,
                msg3: rach.msg3_at,
                backhaul_ns: rach.backhaul_ns,
                connected: now,
                penalty_ns: hard_penalty.as_nanos(),
                rach_rounds: rach.proc.attempts(),
            };
            let bd = InterruptionBreakdown::from_marks(&marks);
            debug_assert!(
                bd.total_ms.to_bits() == ms.to_bits(),
                "breakdown total must bit-equal the recorded interruption"
            );
            let (arm, causes) = match ue.spec.protocol {
                ProtocolKind::SilentTracker => {
                    self.telemetry.soft.record(ms);
                    self.telemetry.cur.soft.record(ms);
                    (0, &mut self.telemetry.soft_causes)
                }
                ProtocolKind::Reactive => {
                    self.telemetry.hard.record(ms);
                    self.telemetry.cur.hard.record(ms);
                    (1, &mut self.telemetry.hard_causes)
                }
            };
            causes.record(bd.cause.label(), ms);
            let c = bd.cause as usize;
            self.telemetry.cause_totals[arm][c] += ms;
            self.telemetry.cause_phase_sums[arm][c] += bd.phase_sum_ms();
            self.telemetry.cause_counts_run[c] += 1;
            self.telemetry.cur.cause_counts[c] += 1;
            crate::attribution::push_worst(&mut self.telemetry.worst, bd);
            ue.proto.record_marks(&marks);
            if self.cfg.exact_ecdfs {
                ue.interruptions_ms.push(ms);
            }
        }
        ue.handovers += 1;
        self.telemetry.cur.handovers += 1;
        self.handovers_in[rach.target] += 1;
        ue.serving = rach.target;
        // The target BS served the whole RACH exchange on the SSB beam
        // the UE accessed through — that beam, not the spawn-era one, is
        // what it keeps transmitting on after admission. (Without this,
        // a fast-moving UE could be handed over straight into a spurious
        // RLF on a months-stale transmit beam.)
        ue.bs_tx_beam[rach.target] = rach.ssb_beam;
        // Re-anchor the protocol on the new serving cell: beam management
        // restarts there with the access beam as the serving beam (the
        // session continues — this is what the context transfer bought).
        ue.bank_proto();
        // Warm-start (opt-in): the monitor that tracked the target beam
        // pre-handover seeds the new serving monitor instead of starting
        // the EWMA cold.
        let warm = if self.cfg.base.tracker.warm_start_handover {
            ue.proto
                .tracked()
                .filter(|(cell, _, _)| cell.0 as usize == rach.target)
                .and_then(|_| ue.proto.tracked_monitor())
        } else {
            None
        };
        let rec = ue.proto.finish_recording();
        ue.proto = Proto::new(
            ue.spec.protocol,
            self.cfg.base.tracker,
            ue.uid,
            CellId(rach.target as u16),
            Arc::clone(&self.ue_codebook),
            rach.rx_beam,
        );
        if let Some(w) = &warm {
            ue.proto.warm_start(w);
        }
        if let Some(rec) = rec {
            ue.proto.resume_recording(rec, warm);
        }
        ue.rlf_declared = false;
        ue.rlf_count = 0;
        ue.handover_reason = None;
        ue.trigger_at = None;
        ue.rlf_at = None;
    }

    // ----- protocol actions -------------------------------------------------

    fn apply_actions(
        &mut self,
        ex: &mut Executive<Ev>,
        now: SimTime,
        i: usize,
        actions: Vec<Action>,
    ) {
        for a in actions {
            match a {
                Action::SetServingRxBeam(_) | Action::SetGapRxBeam(_) => {}
                Action::SendToServing(pdu) => {
                    let serving = self.ues[i].serving;
                    self.send_to_bs(ex, now, i, serving, pdu);
                }
                Action::SearchFailed { .. } | Action::NeighborAcquired(_) => {}
                Action::ExecuteHandover(directive) => self.start_rach(ex, now, i, directive),
            }
        }
    }

    fn start_rach(&mut self, ex: &mut Executive<Ev>, now: SimTime, i: usize, d: HandoverDirective) {
        if self.ues[i].rach.is_some() {
            return;
        }
        let target = d.target.0 as usize;
        if target == self.ues[i].serving {
            return; // stale directive towards the current serving cell
        }
        let ue = &mut self.ues[i];
        ue.trigger_at = Some(now);
        ue.handover_reason = Some(d.reason);
        let proc = RachProcedure::new(self.cfg.base.rach, ue.uid, ue.context_token());
        let ssb = self.cfg.base.ssb(target);
        let at = self.cfg.base.prach.next_occasion(&ssb, now, d.ssb_beam);
        ue.rach = Some(RachExec {
            target,
            ssb_beam: d.ssb_beam,
            rx_beam: d.rx_beam,
            proc,
            try_pending: true,
            first_tx: None,
            msg3_at: None,
            backhaul_ns: 0,
        });
        ue.pending_events += 1;
        ex.schedule_at(at, Ev::RachTry { ue: self.gid(i) });
    }

    // ----- result collection ------------------------------------------------

    fn collect(
        mut self,
        events: u64,
        budget_exhausted: bool,
        pending: u64,
        pending_peak: u64,
    ) -> ShardOutcome {
        // A duration that is not a whole number of snapshot intervals
        // leaves a partial tail slice; seal it with end-of-run gauges so
        // the timeline covers the full run.
        if let Some(dt) = self.cfg.snapshot_interval {
            if self.cfg.base.duration.as_nanos() % dt.as_nanos() != 0 {
                let end = SimTime::ZERO + self.cfg.base.duration;
                self.seal_slice(end, pending);
            }
        }
        if let Some(ring) = self.telemetry.ring.as_mut() {
            ring.finish();
        }
        let occasions_per_cell = |cell: usize| {
            let ssb = self.cfg.base.ssb(cell);
            (self.cfg.base.duration.as_nanos() / ssb.burst_period.as_nanos())
                * ssb.n_tx_beams as u64
        };
        let per_cell = (0..self.sites.len())
            .map(|c| CellLoad {
                responder: self.responders[c].stats(),
                preambles_tx: self.preambles_tx[c],
                occasions_used: self.occasions_used[c].len() as u64,
                occasions_total: occasions_per_cell(c),
                handovers_in: self.handovers_in[c],
            })
            .collect();
        let mut out = ShardOutcome {
            per_cell,
            ues: self.ues.len() as u64,
            events,
            budget_exhausted_shards: u64::from(budget_exhausted),
            exact: self.exact,
            // The raw occasion instants travel with the shard result so
            // the exact-mode merge can count each *global* occasion once
            // (two shards using the same occasion is one occasion, not
            // two); the legacy merge keeps summing per-shard counts.
            occasion_instants: std::mem::take(&mut self.occasions_used),
            ..ShardOutcome::default()
        };
        let mut traces_cast = 0u64;
        let mut rays_tested = 0u64;
        for links in &self.links {
            let ls = links.stats();
            traces_cast += ls.traces_cast;
            rays_tested += ls.rays_tested;
        }
        for ue in &mut self.ues {
            ue.bank_proto();
            if let Some(rec) = ue.proto.finish_recording() {
                out.ue_traces
                    .push(rec.into_trace(ue.spec.id, ue.uid.0, ue.spec.protocol));
            }
            out.handovers += ue.handovers;
            out.rlfs += ue.rlfs;
            out.rach_attempts += ue.rach_attempts;
            out.search_dwells += ue.dwells_banked;
            out.nrba_switches += ue.nrba_banked;
            match ue.spec.protocol {
                ProtocolKind::SilentTracker => out
                    .soft_interruptions_ms
                    .extend(ue.interruptions_ms.iter().copied()),
                ProtocolKind::Reactive => out
                    .hard_interruptions_ms
                    .extend(ue.interruptions_ms.iter().copied()),
            }
        }
        // Deterministic work counters: every value here is a pure
        // function of the simulated run, so merged profiles must be
        // byte-identical across worker counts (wall-time spans are kept
        // separate and carry no such contract).
        let mut profile = Profiler::default();
        profile.counters.add("phy.traces_cast", traces_cast);
        profile.counters.add("phy.rays_tested", rays_tested);
        profile.counters.add("des.events_popped", events);
        profile
            .counters
            .set_max("des.event_queue_peak", pending_peak);
        profile
            .counters
            .add("fleet.scratch_growth", self.telemetry.scratch_growth);
        // Migration traffic: counted once per move on each side, so the
        // fleet-wide in/out totals agree and the merged counter is a
        // deterministic function of the run (not of worker count).
        profile
            .counters
            .add("fleet.migrations_in", self.migrations_in);
        profile
            .counters
            .add("fleet.migrations_out", self.migrations_out);
        if let Some(ring) = &self.telemetry.ring {
            profile.counters.add("obs.snapshot_slices", ring.pushed());
        }
        out.profile = profile;
        out.soft_sketch = std::mem::take(&mut self.telemetry.soft);
        out.hard_sketch = std::mem::take(&mut self.telemetry.hard);
        // Attribution conservation ledgers, checked before the causal
        // aggregates leave the shard: (a) per arm and cause, the summed
        // phase decompositions bit-equal the summed recorded samples;
        // (b) the timeline's per-cause slice counts sum to the run's
        // per-cause totals — nothing double-counted, nothing dropped.
        if cfg!(debug_assertions) {
            debug_assert!(
                self.telemetry
                    .cause_totals
                    .iter()
                    .flatten()
                    .zip(self.telemetry.cause_phase_sums.iter().flatten())
                    .all(|(t, p)| t.to_bits() == p.to_bits()),
                "per-cause phase sums must bit-equal the recorded interruption totals"
            );
            if let Some(ring) = &self.telemetry.ring {
                let mut sums = [0u64; 5];
                for s in ring.slices() {
                    for (a, b) in sums.iter_mut().zip(&s.cause_counts) {
                        *a += b;
                    }
                }
                debug_assert!(
                    sums == self.telemetry.cause_counts_run,
                    "timeline slice cause counts must sum to the run's cause totals"
                );
            }
        }
        out.soft_causes = std::mem::take(&mut self.telemetry.soft_causes);
        out.hard_causes = std::mem::take(&mut self.telemetry.hard_causes);
        out.worst = std::mem::take(&mut self.telemetry.worst);
        out.timeline = self.telemetry.ring.take();
        // The constant-memory contract: unless the exact-ECDF opt-in is
        // armed, no per-handover sample vector may leave the shard —
        // quantiles travel only through the fixed-size sketches.
        debug_assert!(
            self.cfg.exact_ecdfs
                || (out.soft_interruptions_ms.is_empty() && out.hard_interruptions_ms.is_empty()),
            "raw interruption samples retained without exact_ecdfs"
        );
        out
    }
}
