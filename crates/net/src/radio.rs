//! Radio plumbing shared by the single-UE executor and the fleet engine:
//! the static cell sites (poses + transmit codebooks) and one mobile's set
//! of stochastic links to every cell.
//!
//! The single-UE [`crate::scenario::Scenario`] owns exactly one [`LinkSet`];
//! a fleet simulation owns one per UE, all sharing the same [`Sites`]. RNG
//! streams are derived per link, so adding UEs never perturbs the channel
//! draws of existing ones.

use std::sync::Arc;

use rand::rngs::StdRng;

use st_des::{RngStreams, SimTime};
use st_env::{DynamicEnvironment, OcclusionScratch};
use st_mac::timing::{SsbConfig, TxBeamIndex};
use st_phy::channel::{ChannelConfig, Environment, PathSet};
use st_phy::codebook::{BeamId, Codebook};
use st_phy::geometry::{Pose, Vec2};
use st_phy::link::{rss, rss_sweep_tx, RadioConfig};
use st_phy::units::Dbm;
use st_phy::LinkChannel;

use crate::config::CellConfig;

/// The static side of a deployment: every base station's pose, transmit
/// codebook and SSB sweep, plus the propagation environment and the radio
/// front-end parameters shared by all links.
#[derive(Debug, Clone)]
pub struct Sites {
    pub cells: Vec<CellConfig>,
    pub codebooks: Vec<Codebook>,
    pub environment: Environment,
    /// Moving geometric blockers occluding rays after each trace; `None`
    /// keeps the static world (every pre-existing scenario's behaviour).
    pub dynamics: Option<Arc<DynamicEnvironment>>,
    pub radio: RadioConfig,
    pub channel: ChannelConfig,
}

impl Sites {
    pub fn new(
        cells: Vec<CellConfig>,
        environment: Environment,
        radio: RadioConfig,
        channel: ChannelConfig,
    ) -> Sites {
        let codebooks = cells
            .iter()
            .map(|c| Codebook::uniform_sectored(c.n_tx_beams as usize, st_phy::Degrees(30.0)))
            .collect();
        Sites {
            cells,
            codebooks,
            environment,
            dynamics: None,
            radio,
            channel,
        }
    }

    /// Attach a dynamic environment. Its static walls become *the* walls
    /// (single source of truth), so a `Sites` can never trace against a
    /// different geometry than its blockers were built for.
    pub fn with_dynamics(mut self, dynamics: Arc<DynamicEnvironment>) -> Sites {
        self.environment = dynamics.statics().clone();
        self.dynamics = Some(dynamics);
        self
    }

    pub fn len(&self) -> usize {
        self.cells.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    pub fn pose(&self, cell: usize) -> Pose {
        Pose::new(self.cells[cell].position, self.cells[cell].heading)
    }

    /// SSB sweep configuration of cell `idx`.
    pub fn ssb(&self, idx: usize) -> SsbConfig {
        SsbConfig::nr_fr2(self.cells[idx].n_tx_beams)
    }

    /// The transmit beam whose boresight best covers the given UE position
    /// (what the BS converges to after re-training towards that UE).
    pub fn best_tx_beam_towards(&self, cell: usize, ue_position: st_phy::Vec2) -> TxBeamIndex {
        self.codebooks[cell]
            .best_beam_towards(self.pose(cell).local_bearing_to(ue_position))
            .0
    }
}

/// One mobile's stochastic links: a [`LinkChannel`] plus its dedicated
/// RNG stream per (this UE, cell) pair.
///
/// Links are stored in per-cell *slots* created lazily the first time a
/// cell enters the UE's **interest set** ([`LinkSet::set_interest`]) or
/// is measured. Each link draws only from its own stream, so creating,
/// suspending or resuming one link never perturbs the channel draws of
/// any other — the property that makes interest management (restricting
/// a fleet UE's links to cells within radio range) RNG-safe. A link that
/// leaves the interest set keeps its slot but stops advancing; if it is
/// measured again it catches up to the set clock in one step, so its
/// fading correlation decays over the whole gap exactly as the process
/// prescribes for that elapsed time.
///
/// Each slot keeps a [`PathSet`] snapshot tagged with the (instant, UE
/// position) it was traced at. Every RSS evaluation at the same instant —
/// all beams of an SSB sweep, the serving probe fan, a PDU delivery
/// sample — reuses the snapshot, so one measurement instant costs one
/// trace per touched link and zero heap allocation in steady state.
/// Snapshot reuse is RNG-neutral by construction: within one instant the
/// geometry is fixed, so a re-trace would create no new fading processes
/// and consume no draws (see [`LinkChannel::trace_into`]).
#[derive(Debug)]
pub struct LinkSet {
    config: ChannelConfig,
    streams: RngStreams,
    seeding: LinkSeeding,
    n_cells: usize,
    /// Per-cell link state, sorted by cell id; slots persist once
    /// created (struct-of-arrays friendly: one contiguous scratch run
    /// per UE, only as long as the cells this UE ever heard).
    slots: Vec<LinkSlot>,
    /// The interest set: sorted cell ids advanced by [`Self::step_to`]
    /// and swept by the fleet's measurement pass.
    active: Vec<u16>,
    /// Set-level clock: the instant the active links were last advanced
    /// to. Lagging slots catch up to it on demand.
    clock: SimTime,
    /// Occlusion candidate scratch for the dynamic-environment pass,
    /// reused every snapshot (sized once to the blocker count).
    occl: OcclusionScratch,
    /// Profiler counters: actual geometry traces performed (cache
    /// misses of the snapshot key) and rays produced by those traces.
    /// Deterministic — pure functions of the measurement sequence.
    traces_cast: u64,
    rays_tested: u64,
}

/// Which RNG-stream labelling scheme seeds a lazily created link.
#[derive(Debug, Clone, Copy)]
enum LinkSeeding {
    /// `"channel"` × cell index — the single-UE executor's labels.
    SingleUe,
    /// `"fleet-channel"` × `(ue << 20) | cell` — fleet labels, disjoint
    /// per UE.
    Fleet { ue: u64 },
}

#[derive(Debug)]
struct LinkSlot {
    cell: u16,
    channel: LinkChannel,
    rng: StdRng,
    /// The instant this link's processes were last advanced to.
    last_step: SimTime,
    /// Path snapshot (scratch buffer, reused forever) and the
    /// (instant, UE position) it was traced at.
    snap: PathSet,
    snap_key: Option<(SimTime, Vec2)>,
}

/// Deterministic per-link-set work counters, drained into the run
/// profiler when a shard collects its outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Geometry traces actually performed (snapshot-cache misses).
    pub traces_cast: u64,
    /// Rays produced by those traces (post-occlusion path count).
    pub rays_tested: u64,
}

impl LinkSet {
    /// Streams labelled exactly as the single-UE executor always labelled
    /// them (`"channel"` × cell index), preserving seeded baselines.
    /// Every cell is in the interest set from the start.
    pub fn single_ue(streams: &RngStreams, config: ChannelConfig, n_cells: usize) -> LinkSet {
        let mut set = Self::empty(streams, config, n_cells, LinkSeeding::SingleUe);
        set.activate_all();
        set
    }

    /// Streams for UE number `ue` of a fleet; disjoint from every other
    /// UE's streams and from the single-UE labels. Every cell is in the
    /// interest set from the start (the pre-interest-management
    /// behaviour, byte-identical draws).
    pub fn for_ue(streams: &RngStreams, config: ChannelConfig, n_cells: usize, ue: u64) -> LinkSet {
        let mut set = Self::empty(streams, config, n_cells, LinkSeeding::Fleet { ue });
        set.activate_all();
        set
    }

    /// Fleet streams with an *empty* interest set: no link exists until
    /// [`Self::set_interest`] (or a measurement) touches its cell.
    pub fn for_ue_interest(
        streams: &RngStreams,
        config: ChannelConfig,
        n_cells: usize,
        ue: u64,
    ) -> LinkSet {
        Self::empty(streams, config, n_cells, LinkSeeding::Fleet { ue })
    }

    fn empty(
        streams: &RngStreams,
        config: ChannelConfig,
        n_cells: usize,
        seeding: LinkSeeding,
    ) -> LinkSet {
        LinkSet {
            config,
            streams: streams.clone(),
            seeding,
            n_cells,
            slots: Vec::new(),
            active: Vec::new(),
            clock: SimTime::ZERO,
            occl: OcclusionScratch::new(),
            traces_cast: 0,
            rays_tested: 0,
        }
    }

    fn activate_all(&mut self) {
        let cells: Vec<u16> = (0..self.n_cells as u16).collect();
        self.set_interest(&cells);
    }

    /// The fresh, never-advanced RNG stream of (this UE, `cell`) — a pure
    /// function of the master seed, so a slot created at `t > 0` draws
    /// exactly what it would have drawn if created at `t = 0`.
    fn seed_rng(&self, cell: u16) -> StdRng {
        match self.seeding {
            LinkSeeding::SingleUe => self.streams.stream_indexed("channel", u64::from(cell)),
            LinkSeeding::Fleet { ue } => self
                .streams
                .stream_indexed("fleet-channel", (ue << 20) | u64::from(cell)),
        }
    }

    fn ensure_slot(&mut self, cell: u16) -> usize {
        debug_assert!((cell as usize) < self.n_cells);
        match self.slots.binary_search_by_key(&cell, |s| s.cell) {
            Ok(i) => i,
            Err(i) => {
                let mut rng = self.seed_rng(cell);
                let channel = LinkChannel::new(&mut rng, self.config);
                self.slots.insert(
                    i,
                    LinkSlot {
                        cell,
                        channel,
                        rng,
                        last_step: SimTime::ZERO,
                        snap: PathSet::new(),
                        snap_key: None,
                    },
                );
                i
            }
        }
    }

    /// Replace the interest set with `cells` (sorted, deduplicated cell
    /// ids). Links for newly interesting cells are created on the spot
    /// from their own streams; links leaving the set keep their slot but
    /// stop advancing. The fleet engine refreshes this from each UE's
    /// position every SSB burst, always force-including the serving cell
    /// and any in-flight RACH target.
    pub fn set_interest(&mut self, cells: &[u16]) {
        debug_assert!(cells.windows(2).all(|w| w[0] < w[1]), "sorted, deduped");
        for &c in cells {
            self.ensure_slot(c);
        }
        self.active.clear();
        self.active.extend_from_slice(cells);
    }

    /// The current interest set, ascending.
    pub fn active_cells(&self) -> &[u16] {
        &self.active
    }

    /// Number of cells this set indexes (interesting or not).
    pub fn n_cells(&self) -> usize {
        self.n_cells
    }

    /// Trace/ray work counters accumulated since construction.
    pub fn stats(&self) -> LinkStats {
        LinkStats {
            traces_cast: self.traces_cast,
            rays_tested: self.rays_tested,
        }
    }

    /// Advance every *interesting* link's time-correlated processes to
    /// `now`. Snapshots stay valid only within one instant: their key
    /// carries the step time, so advancing the clock invalidates them
    /// implicitly. Links outside the interest set stay frozen and catch
    /// up in one step if they are ever measured again.
    pub fn step_to(&mut self, now: SimTime) {
        self.clock = now;
        let mut ai = 0;
        for slot in &mut self.slots {
            if ai == self.active.len() {
                break;
            }
            if slot.cell == self.active[ai] {
                ai += 1;
                let dt = now.since(slot.last_step).as_secs_f64();
                if dt > 0.0 {
                    slot.channel.step(&mut slot.rng, dt);
                    slot.last_step = now;
                }
            }
        }
    }

    /// The path snapshot of `cell` for a UE at `ue_pos`, traced at most
    /// once per (instant, position) and reused for every beam evaluated
    /// against it. With a dynamic environment attached, the occlusion
    /// pass runs once here, on the snapshot — it consumes no RNG draws
    /// and allocates nothing in steady state, so the zero-allocation and
    /// determinism contracts of the sweep path carry over unchanged.
    fn snapshot(&mut self, sites: &Sites, cell: usize, ue_pos: Vec2) -> &PathSet {
        let i = self.ensure_slot(cell as u16);
        let clock = self.clock;
        let slot = &mut self.slots[i];
        // A link measured from outside the interest set catches up to
        // the set clock first (its own stream — no other link notices).
        let dt = clock.since(slot.last_step).as_secs_f64();
        if dt > 0.0 {
            slot.channel.step(&mut slot.rng, dt);
            slot.last_step = clock;
        }
        let key = Some((slot.last_step, ue_pos));
        if slot.snap_key != key {
            let bs_pos = sites.pose(cell).position;
            slot.channel.trace_into(
                &mut slot.rng,
                &sites.environment,
                bs_pos,
                ue_pos,
                &mut slot.snap,
            );
            if let Some(dynamics) = &sites.dynamics {
                dynamics.occlude(
                    slot.last_step.as_secs_f64(),
                    bs_pos,
                    ue_pos,
                    &mut slot.snap,
                    &mut self.occl,
                );
            }
            self.traces_cast += 1;
            self.rays_tested += slot.snap.len() as u64;
            slot.snap_key = key;
        }
        &self.slots[i].snap
    }

    /// Downlink RSS from `cell` on (`tx_beam`, `rx_beam`) for a UE at
    /// `ue_pose`. By channel reciprocity the same figure serves the uplink.
    pub fn rss(
        &mut self,
        sites: &Sites,
        cell: usize,
        tx_beam: TxBeamIndex,
        ue_pose: Pose,
        ue_codebook: &Codebook,
        rx_beam: BeamId,
    ) -> Option<Dbm> {
        let bs = sites.pose(cell);
        let set = self.snapshot(sites, cell, ue_pose.position);
        rss(
            sites.radio.tx_power,
            bs,
            &sites.codebooks[cell],
            BeamId(tx_beam),
            ue_pose,
            ue_codebook,
            rx_beam,
            set.samples(),
        )
    }

    /// RSS of *every* transmit beam of `cell` on the fixed `rx_beam`, in
    /// one trace and one pass over the rays — the SSB-sweep hot path.
    /// `out` must be `sites.codebooks[cell].len()` long; returns `false`
    /// (out untouched) when the link has no paths.
    pub fn rss_tx_sweep(
        &mut self,
        sites: &Sites,
        cell: usize,
        ue_pose: Pose,
        ue_codebook: &Codebook,
        rx_beam: BeamId,
        out: &mut [Dbm],
    ) -> bool {
        let bs = sites.pose(cell);
        let set = self.snapshot(sites, cell, ue_pose.position);
        rss_sweep_tx(
            sites.radio.tx_power,
            bs,
            &sites.codebooks[cell],
            ue_pose,
            ue_codebook,
            rx_beam,
            set.samples(),
            out,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_phy::codebook::BeamwidthClass;
    use st_phy::geometry::{Radians, Vec2};
    use st_phy::link::detectable;

    fn sites() -> Sites {
        Sites::new(
            vec![CellConfig::at(-40.0, 10.0), CellConfig::at(40.0, 10.0)],
            Environment::street_canyon(200.0, 30.0),
            RadioConfig::ni_60ghz_testbed(),
            ChannelConfig::deterministic(),
        )
    }

    #[test]
    fn sites_expose_geometry_and_sweeps() {
        let s = sites();
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.pose(1).position, Vec2::new(40.0, 10.0));
        assert_eq!(s.ssb(0).n_tx_beams, 16);
        let beam = s.best_tx_beam_towards(0, Vec2::new(0.0, 0.0));
        assert!(beam < 16);
    }

    #[test]
    fn linkset_rss_is_detectable_on_good_geometry() {
        let s = sites();
        let streams = RngStreams::new(1);
        let mut links = LinkSet::single_ue(&streams, s.channel, s.len());
        let ue_pose = Pose::new(Vec2::new(-30.0, 0.0), Radians(0.0));
        let ue_cb = Codebook::for_class(BeamwidthClass::Narrow);
        let tx = s.best_tx_beam_towards(0, ue_pose.position);
        let rx = ue_cb.best_beam_towards(ue_pose.local_bearing_to(s.cells[0].position));
        let r = links
            .rss(&s, 0, tx, ue_pose, &ue_cb, rx)
            .expect("paths exist");
        assert!(detectable(r, &s.radio), "{r}");
    }

    #[test]
    fn tx_sweep_matches_per_beam_rss_and_snapshot_is_rng_neutral() {
        let s = sites();
        let mut cfg = s.channel;
        cfg.fading_enabled = true; // exercise the stochastic path
        let s = Sites::new(s.cells.clone(), s.environment.clone(), s.radio, cfg);
        let streams = RngStreams::new(11);
        let ue_cb = Codebook::for_class(BeamwidthClass::Narrow);
        let ue_pose = Pose::new(Vec2::new(-20.0, 0.0), Radians(0.3));
        let rx = BeamId(5);

        // Sweep vs per-beam on identically-seeded link sets; interleave
        // time steps so the fading processes actually advance.
        let mut a = LinkSet::single_ue(&streams, cfg, s.len());
        let mut b = LinkSet::single_ue(&streams, cfg, s.len());
        let n = s.codebooks[0].len();
        let mut out = vec![Dbm(0.0); n];
        for step in 1..=10u64 {
            let now = SimTime::ZERO + st_des::SimDuration::from_millis(step * 3);
            a.step_to(now);
            b.step_to(now);
            assert!(a.rss_tx_sweep(&s, 0, ue_pose, &ue_cb, rx, &mut out));
            for (beam, &got) in out.iter().enumerate() {
                let want = b
                    .rss(&s, 0, beam as TxBeamIndex, ue_pose, &ue_cb, rx)
                    .unwrap();
                assert_eq!(got, want, "beam {beam} at step {step}");
            }
            // Mixing snapshot reuse (sweep, then single rss at the same
            // instant) must not perturb the draws of later instants.
            let again = a.rss(&s, 0, 3, ue_pose, &ue_cb, rx).unwrap();
            assert_eq!(again, out[3]);
        }
    }

    #[test]
    fn stats_count_traces_not_snapshot_hits() {
        let s = sites();
        let streams = RngStreams::new(1);
        let mut links = LinkSet::single_ue(&streams, s.channel, s.len());
        let ue_pose = Pose::new(Vec2::new(-30.0, 0.0), Radians(0.0));
        let ue_cb = Codebook::for_class(BeamwidthClass::Narrow);
        assert_eq!(links.stats(), LinkStats::default());
        links.rss(&s, 0, 2, ue_pose, &ue_cb, BeamId(0));
        let after_one = links.stats();
        assert_eq!(after_one.traces_cast, 1);
        assert!(after_one.rays_tested >= 1);
        // Same instant + position: snapshot reuse, no new trace.
        links.rss(&s, 0, 3, ue_pose, &ue_cb, BeamId(1));
        assert_eq!(links.stats(), after_one);
        // New instant invalidates the snapshot.
        links.step_to(SimTime::ZERO + st_des::SimDuration::from_millis(5));
        links.rss(&s, 0, 2, ue_pose, &ue_cb, BeamId(0));
        assert_eq!(links.stats().traces_cast, 2);
    }

    #[test]
    fn per_ue_streams_are_disjoint() {
        let s = sites();
        let streams = RngStreams::new(9);
        let mut a = LinkSet::for_ue(&streams, s.channel, s.len(), 0);
        let mut b = LinkSet::for_ue(&streams, s.channel, s.len(), 1);
        let ue_pose = Pose::new(Vec2::new(0.0, 0.0), Radians(0.0));
        let ue_cb = Codebook::for_class(BeamwidthClass::Narrow);
        // Different UEs see different shadowing states on the same link.
        a.step_to(SimTime::ZERO + st_des::SimDuration::from_secs(5));
        b.step_to(SimTime::ZERO + st_des::SimDuration::from_secs(5));
        let mut cfg = s.channel;
        cfg.shadowing_sigma_db = 6.0;
        let s2 = Sites::new(s.cells.clone(), s.environment.clone(), s.radio, cfg);
        let mut a2 = LinkSet::for_ue(&streams, cfg, s2.len(), 0);
        let mut b2 = LinkSet::for_ue(&streams, cfg, s2.len(), 1);
        let ra = a2.rss(&s2, 0, 8, ue_pose, &ue_cb, BeamId(0)).unwrap();
        let rb = b2.rss(&s2, 0, 8, ue_pose, &ue_cb, BeamId(0)).unwrap();
        assert_ne!(ra, rb);
        // Same UE id reproduces the same draw.
        let mut a3 = LinkSet::for_ue(&streams, cfg, s2.len(), 0);
        let ra3 = a3.rss(&s2, 0, 8, ue_pose, &ue_cb, BeamId(0)).unwrap();
        assert_eq!(ra, ra3);
    }
}
