//! End-to-end protocol trace record/replay containers.
//!
//! A **trace** is the complete protocol-visible history of a fleet run:
//! for every UE, the exact [`ProtocolEvent`] stream its protocol instance
//! consumed, segmented at handover re-anchorings, together with the
//! FNV-1a digest of the action stream it emitted and the byte-exact
//! final [`ProtocolState`] snapshot of each segment. Because the protocol
//! core is a pure fold (`step(ctx, state, event) -> (state, actions)`),
//! the trace is sufficient to re-evaluate the protocol *without* the
//! physical layer or the event executive: [`crate::replay`] refolds the
//! recorded events and checks the digests, byte for byte.
//!
//! Recording is opt-in and attaches at the [`crate::proto::Proto`]
//! dispatch surface, so both the single-UE executor and the fleet engine
//! record through one hook. The format is a compact custom binary built
//! on the `silent_tracker::wire` primitives (LEB128 varints, bit-exact
//! floats), with consecutive timer ticks compressed into
//! [`ProtocolEvent::TickRun`] records — ticks dominate the raw event
//! count but carry one timestamp of information each — and event
//! timestamps delta-encoded against the previous record
//! ([`ProtocolEvent::encode_from`]), since a monotone stream's deltas
//! fit in one to three varint bytes where absolute times take five.

use bytes::BufMut;
use silent_tracker::attribution::InterruptionMarks;
use silent_tracker::measurement::LinkMonitor;
use silent_tracker::tracker::Action;
use silent_tracker::wire::{self, Fnv64, WireError};
use silent_tracker::{ProtocolEvent, ProtocolState, TrackerConfig};
use st_des::{SimDuration, SimTime};
use st_phy::codebook::BeamwidthClass;
use st_phy::units::Db;

use crate::config::ProtocolKind;

/// Magic + version prefix of a serialized [`FleetTrace`] file. Version 2
/// appends per-segment [`InterruptionMarks`] (causal attribution of the
/// handover that ended the segment) after the final-state snapshot.
pub const TRACE_MAGIC: &[u8; 8] = b"STTRACE2";

/// One protocol incarnation of one UE: from (re-)anchoring on a serving
/// cell until the next handover completes (or the run ends).
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentTrace {
    /// Serving cell the protocol was anchored on.
    pub serving_cell: u16,
    /// Initial serving receive beam.
    pub serving_rx: u16,
    /// Warm-start seed applied at anchoring, if any (the monitor that
    /// tracked this link as a neighbor before the handover).
    pub warm: Option<LinkMonitor>,
    /// Concatenated canonical [`ProtocolEvent`] encodings, in fold
    /// order, with delta timestamps ([`ProtocolEvent::encode_from`]
    /// threaded from `SimTime::ZERO`).
    pub events: Vec<u8>,
    /// Number of encoded event records in `events` (tick runs count as
    /// one record).
    pub n_events: u64,
    /// Actions the protocol emitted over the segment.
    pub action_count: u64,
    /// FNV-1a 64 digest over the canonical encodings of those actions.
    pub action_digest: u64,
    /// Byte-exact final [`ProtocolState`] snapshot.
    pub final_state: Vec<u8>,
    /// Causal-attribution marks of handovers recorded while this
    /// segment was open (in practice: the handover whose completion
    /// closed the segment). Self-contained, so the autopsy tool derives
    /// the identical [`InterruptionBreakdown`] the live run computed.
    ///
    /// [`InterruptionBreakdown`]: silent_tracker::attribution::InterruptionBreakdown
    pub marks: Vec<InterruptionMarks>,
}

/// The full recorded history of one UE across all its segments.
#[derive(Debug, Clone, PartialEq)]
pub struct UeTrace {
    /// Global (fleet-wide) UE index, stable across shard counts.
    pub id: u64,
    /// The MAC-layer UE identity the protocol ran under (it appears in
    /// emitted PDUs, so replay must reuse it exactly).
    pub uid: u32,
    pub kind: ProtocolKind,
    pub segments: Vec<SegmentTrace>,
}

impl UeTrace {
    /// Event records across all segments.
    pub fn n_events(&self) -> u64 {
        self.segments.iter().map(|s| s.n_events).sum()
    }
}

/// One recorded fleet run (one protocol arm, one config, one seed).
#[derive(Debug, Clone, PartialEq)]
pub struct RunTrace {
    /// Human label, e.g. `"1000-silent"` or `"smoke"`.
    pub label: String,
    pub seed: u64,
    /// Simulated duration of the run.
    pub duration: SimDuration,
    /// Wall-clock seconds the *live* run took (the replay speedup
    /// denominator).
    pub live_wall_s: f64,
    /// The protocol configuration the trace was recorded under.
    pub tracker: TrackerConfig,
    /// The shared UE codebook, by class (custom codebooks are rejected
    /// at recording time — the trace must be able to rebuild it).
    pub codebook: BeamwidthClass,
    /// Per-UE traces, sorted by global id.
    pub ues: Vec<UeTrace>,
}

impl RunTrace {
    pub fn n_segments(&self) -> u64 {
        self.ues.iter().map(|u| u.segments.len() as u64).sum()
    }

    pub fn n_events(&self) -> u64 {
        self.ues.iter().map(UeTrace::n_events).sum()
    }

    /// UE-seconds of simulated radio time the trace covers.
    pub fn ue_seconds(&self) -> f64 {
        self.ues.len() as f64 * self.duration.as_secs_f64()
    }
}

/// A set of recorded runs (e.g. both protocol arms of a load sweep),
/// serializable to one trace file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FleetTrace {
    pub runs: Vec<RunTrace>,
}

// ----- codec ----------------------------------------------------------------

fn put_str<B: BufMut>(buf: &mut B, s: &str) {
    wire::put_varu64(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut &[u8]) -> Result<String, WireError> {
    let n = wire::get_varu64(buf)? as usize;
    if buf.len() < n {
        return Err(WireError::Truncated);
    }
    let (head, rest) = buf.split_at(n);
    let s = std::str::from_utf8(head)
        .map_err(|_| WireError::Corrupt("label utf-8"))?
        .to_string();
    *buf = rest;
    Ok(s)
}

fn put_bytes<B: BufMut>(buf: &mut B, v: &[u8]) {
    wire::put_varu64(buf, v.len() as u64);
    buf.put_slice(v);
}

fn get_bytes(buf: &mut &[u8]) -> Result<Vec<u8>, WireError> {
    let n = wire::get_varu64(buf)? as usize;
    if buf.len() < n {
        return Err(WireError::Truncated);
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head.to_vec())
}

fn put_kind<B: BufMut>(buf: &mut B, k: ProtocolKind) {
    buf.put_u8(match k {
        ProtocolKind::SilentTracker => 0,
        ProtocolKind::Reactive => 1,
    });
}

fn get_kind(buf: &mut &[u8]) -> Result<ProtocolKind, WireError> {
    match wire::get_u8(buf)? {
        0 => Ok(ProtocolKind::SilentTracker),
        1 => Ok(ProtocolKind::Reactive),
        _ => Err(WireError::Corrupt("protocol kind tag")),
    }
}

fn put_class<B: BufMut>(buf: &mut B, c: BeamwidthClass) {
    buf.put_u8(match c {
        BeamwidthClass::Narrow => 0,
        BeamwidthClass::Wide => 1,
        BeamwidthClass::Omni => 2,
    });
}

fn get_class(buf: &mut &[u8]) -> Result<BeamwidthClass, WireError> {
    match wire::get_u8(buf)? {
        0 => Ok(BeamwidthClass::Narrow),
        1 => Ok(BeamwidthClass::Wide),
        2 => Ok(BeamwidthClass::Omni),
        _ => Err(WireError::Corrupt("beamwidth class tag")),
    }
}

fn put_tracker_config<B: BufMut>(buf: &mut B, c: &TrackerConfig) {
    wire::put_f64(buf, c.switch_threshold.0);
    wire::put_f64(buf, c.loss_threshold.0);
    wire::put_f64(buf, c.handover_hysteresis.0);
    wire::put_dur(buf, c.assist_timeout);
    wire::put_dur(buf, c.serving_timeout);
    wire::put_f64(buf, c.ewma_alpha);
    wire::put_varu64(buf, c.max_search_dwells as u64);
    wire::put_dur(buf, c.settle_time);
    wire::put_dur(buf, c.track_staleness);
    wire::put_f64(buf, c.loss_reference_decay.0);
    wire::put_varu64(buf, u64::from(c.min_track_samples));
    wire::put_bool(buf, c.warm_start_handover);
}

fn get_tracker_config(buf: &mut &[u8]) -> Result<TrackerConfig, WireError> {
    let c = TrackerConfig {
        switch_threshold: Db(wire::get_f64(buf)?),
        loss_threshold: Db(wire::get_f64(buf)?),
        handover_hysteresis: Db(wire::get_f64(buf)?),
        assist_timeout: wire::get_dur(buf)?,
        serving_timeout: wire::get_dur(buf)?,
        ewma_alpha: wire::get_f64(buf)?,
        max_search_dwells: wire::get_varu64(buf)? as usize,
        settle_time: wire::get_dur(buf)?,
        track_staleness: wire::get_dur(buf)?,
        loss_reference_decay: Db(wire::get_f64(buf)?),
        min_track_samples: wire::get_varu64(buf)? as u32,
        warm_start_handover: wire::get_bool(buf)?,
    };
    c.validate().map_err(WireError::Corrupt)?;
    Ok(c)
}

impl SegmentTrace {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u16(self.serving_cell);
        buf.put_u16(self.serving_rx);
        match &self.warm {
            None => buf.put_u8(0),
            Some(m) => {
                buf.put_u8(1);
                m.encode(buf);
            }
        }
        put_bytes(buf, &self.events);
        wire::put_varu64(buf, self.n_events);
        wire::put_varu64(buf, self.action_count);
        buf.put_u64(self.action_digest);
        put_bytes(buf, &self.final_state);
        wire::put_varu64(buf, self.marks.len() as u64);
        for m in &self.marks {
            m.encode(buf);
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<SegmentTrace, WireError> {
        let serving_cell = wire::get_u16(buf)?;
        let serving_rx = wire::get_u16(buf)?;
        let warm = match wire::get_u8(buf)? {
            0 => None,
            1 => Some(LinkMonitor::decode(buf)?),
            _ => return Err(WireError::Corrupt("warm seed tag")),
        };
        let events = get_bytes(buf)?;
        let n_events = wire::get_varu64(buf)?;
        let action_count = wire::get_varu64(buf)?;
        let action_digest = wire::get_u64(buf)?;
        let final_state = get_bytes(buf)?;
        let n_marks = wire::get_varu64(buf)? as usize;
        let mut marks = Vec::with_capacity(n_marks.min(1024));
        for _ in 0..n_marks {
            marks.push(InterruptionMarks::decode(buf)?);
        }
        Ok(SegmentTrace {
            serving_cell,
            serving_rx,
            warm,
            events,
            n_events,
            action_count,
            action_digest,
            final_state,
            marks,
        })
    }
}

impl UeTrace {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        wire::put_varu64(buf, self.id);
        wire::put_varu64(buf, u64::from(self.uid));
        put_kind(buf, self.kind);
        wire::put_varu64(buf, self.segments.len() as u64);
        for s in &self.segments {
            s.encode(buf);
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<UeTrace, WireError> {
        let id = wire::get_varu64(buf)?;
        let uid = wire::get_varu64(buf)? as u32;
        let kind = get_kind(buf)?;
        let n = wire::get_varu64(buf)? as usize;
        let mut segments = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            segments.push(SegmentTrace::decode(buf)?);
        }
        Ok(UeTrace {
            id,
            uid,
            kind,
            segments,
        })
    }
}

impl RunTrace {
    fn encode<B: BufMut>(&self, buf: &mut B) {
        put_str(buf, &self.label);
        wire::put_varu64(buf, self.seed);
        wire::put_dur(buf, self.duration);
        wire::put_f64(buf, self.live_wall_s);
        put_tracker_config(buf, &self.tracker);
        put_class(buf, self.codebook);
        wire::put_varu64(buf, self.ues.len() as u64);
        for u in &self.ues {
            u.encode(buf);
        }
    }

    fn decode(buf: &mut &[u8]) -> Result<RunTrace, WireError> {
        let label = get_str(buf)?;
        let seed = wire::get_varu64(buf)?;
        let duration = wire::get_dur(buf)?;
        let live_wall_s = wire::get_f64(buf)?;
        let tracker = get_tracker_config(buf)?;
        let codebook = get_class(buf)?;
        let n = wire::get_varu64(buf)? as usize;
        let mut ues = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            ues.push(UeTrace::decode(buf)?);
        }
        Ok(RunTrace {
            label,
            seed,
            duration,
            live_wall_s,
            tracker,
            codebook,
            ues,
        })
    }
}

impl FleetTrace {
    /// Serialize to the compact binary trace format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.put_slice(TRACE_MAGIC);
        wire::put_varu64(&mut buf, self.runs.len() as u64);
        for r in &self.runs {
            r.encode(&mut buf);
        }
        buf
    }

    /// Parse a serialized trace; rejects trailing garbage.
    pub fn from_bytes(mut buf: &[u8]) -> Result<FleetTrace, WireError> {
        if buf.len() < TRACE_MAGIC.len() || &buf[..TRACE_MAGIC.len()] != TRACE_MAGIC {
            return Err(WireError::Corrupt("trace magic"));
        }
        buf = &buf[TRACE_MAGIC.len()..];
        let n = wire::get_varu64(&mut buf)? as usize;
        let mut runs = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            runs.push(RunTrace::decode(&mut buf)?);
        }
        if !buf.is_empty() {
            return Err(WireError::Corrupt("trailing bytes"));
        }
        Ok(FleetTrace { runs })
    }

    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    pub fn load(path: &std::path::Path) -> std::io::Result<FleetTrace> {
        let bytes = std::fs::read(path)?;
        FleetTrace::from_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
    }
}

// ----- recorder -------------------------------------------------------------

/// Consecutive-tick compression state: ticks at `start`, `start+period`,
/// …, most recently `last`.
#[derive(Debug, Clone, Copy)]
struct PendingTicks {
    start: SimTime,
    period: SimDuration,
    count: u64,
    last: SimTime,
}

/// One segment being recorded.
#[derive(Debug, Clone)]
struct OpenSegment {
    serving_cell: u16,
    serving_rx: u16,
    warm: Option<LinkMonitor>,
    events: Vec<u8>,
    n_events: u64,
    /// Delta-timestamp anchor: the last instant the encoded stream
    /// covers (see [`ProtocolEvent::encode_from`]).
    prev: SimTime,
    ticks: Option<PendingTicks>,
    digest: Fnv64,
    action_count: u64,
    marks: Vec<InterruptionMarks>,
}

/// Per-UE event/action recorder, attached to a
/// [`crate::proto::Proto`] via [`Proto::start_recording`]
/// (see [`crate::proto`]). It captures every event the protocol folds
/// (compressing consecutive timer ticks into [`ProtocolEvent::TickRun`]
/// records, which fold identically) and digests every action the
/// protocol emits. Drivers close one segment per protocol incarnation:
/// on handover re-anchoring the fleet engine detaches the recorder from
/// the old protocol instance ([`Proto::finish_recording`]) and
/// re-attaches it to the new one ([`Proto::resume_recording`]).
///
/// [`Proto::start_recording`]: crate::proto::Proto::start_recording
/// [`Proto::finish_recording`]: crate::proto::Proto::finish_recording
/// [`Proto::resume_recording`]: crate::proto::Proto::resume_recording
#[derive(Debug, Clone, Default)]
pub struct UeRecorder {
    segments: Vec<SegmentTrace>,
    cur: Option<OpenSegment>,
    scratch: Vec<u8>,
}

impl UeRecorder {
    pub fn new() -> UeRecorder {
        UeRecorder::default()
    }

    /// Begin recording a new segment (a fresh protocol incarnation
    /// anchored on `serving_cell`/`serving_rx`, optionally warm-started).
    pub fn open_segment(&mut self, serving_cell: u16, serving_rx: u16, warm: Option<LinkMonitor>) {
        assert!(self.cur.is_none(), "previous segment still open");
        self.cur = Some(OpenSegment {
            serving_cell,
            serving_rx,
            warm,
            events: Vec::new(),
            n_events: 0,
            prev: SimTime::ZERO,
            ticks: None,
            digest: Fnv64::new(),
            action_count: 0,
            marks: Vec::new(),
        });
    }

    /// Close the open segment with the protocol's final state snapshot.
    pub fn close_segment(&mut self, final_state: &ProtocolState) {
        let Some(mut seg) = self.cur.take() else {
            return;
        };
        flush_ticks(&mut seg);
        let mut state_bytes = Vec::new();
        final_state.encode(&mut state_bytes);
        self.segments.push(SegmentTrace {
            serving_cell: seg.serving_cell,
            serving_rx: seg.serving_rx,
            warm: seg.warm,
            events: seg.events,
            n_events: seg.n_events,
            action_count: seg.action_count,
            action_digest: seg.digest.finish(),
            final_state: state_bytes,
            marks: seg.marks,
        });
    }

    /// Record the causal-attribution marks of a completed handover. The
    /// driver calls this right before closing the segment the handover
    /// ends, so the marks travel with the protocol incarnation that
    /// performed the access.
    pub fn record_marks(&mut self, m: &InterruptionMarks) {
        if let Some(seg) = &mut self.cur {
            seg.marks.push(*m);
        }
    }

    /// Record one event about to be folded into the protocol.
    pub fn record_event(&mut self, ev: &ProtocolEvent) {
        let Some(seg) = &mut self.cur else { return };
        if let ProtocolEvent::Tick { at } = *ev {
            // Merge into a run when the inter-tick period is constant and
            // strictly positive (a zero period would change TickRun
            // semantics, so equal-instant ticks are never merged).
            match &mut seg.ticks {
                None => {
                    seg.ticks = Some(PendingTicks {
                        start: at,
                        period: SimDuration::ZERO,
                        count: 1,
                        last: at,
                    });
                    return;
                }
                Some(p) => {
                    let gap = at.since(p.last);
                    if gap.as_nanos() > 0 && (p.count == 1 || gap.as_nanos() == p.period.as_nanos())
                    {
                        p.period = gap;
                        p.count += 1;
                        p.last = at;
                        return;
                    }
                }
            }
            flush_ticks(seg);
            seg.ticks = Some(PendingTicks {
                start: at,
                period: SimDuration::ZERO,
                count: 1,
                last: at,
            });
            return;
        }
        flush_ticks(seg);
        seg.prev = ev.encode_from(seg.prev, &mut seg.events);
        seg.n_events += 1;
    }

    /// Digest the actions the protocol emitted for the last event.
    pub fn record_actions(&mut self, actions: &[Action]) {
        let Some(seg) = &mut self.cur else { return };
        for a in actions {
            self.scratch.clear();
            a.encode(&mut self.scratch);
            seg.digest.write(&self.scratch);
        }
        seg.action_count += actions.len() as u64;
    }

    /// Finish: the caller must have closed the last segment
    /// ([`UeRecorder::close_segment`]). Wraps the recording into a
    /// [`UeTrace`].
    pub fn into_trace(self, id: u64, uid: u32, kind: ProtocolKind) -> UeTrace {
        assert!(self.cur.is_none(), "segment still open");
        UeTrace {
            id,
            uid,
            kind,
            segments: self.segments,
        }
    }
}

fn flush_ticks(seg: &mut OpenSegment) {
    let Some(p) = seg.ticks.take() else { return };
    let ev = if p.count == 1 {
        ProtocolEvent::Tick { at: p.start }
    } else {
        ProtocolEvent::TickRun {
            start: p.start,
            period: p.period,
            count: p.count,
        }
    };
    seg.prev = ev.encode_from(seg.prev, &mut seg.events);
    seg.n_events += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_phy::units::Dbm;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn sample_trace() -> FleetTrace {
        let mut rec = UeRecorder::new();
        rec.open_segment(0, 4, None);
        for k in 0..5 {
            rec.record_event(&ProtocolEvent::Tick { at: t(k) });
        }
        rec.record_event(&ProtocolEvent::ServingRss {
            at: t(5),
            rss: Dbm(-61.5),
        });
        rec.record_actions(&[Action::SetServingRxBeam(st_phy::codebook::BeamId(3))]);
        let state = ProtocolState::Reactive(silent_tracker::ReactiveState::initial(
            &silent_tracker::ProtocolCtx::new(
                TrackerConfig::paper_defaults(),
                st_mac::pdu::UeId(9),
                st_mac::pdu::CellId(0),
                st_phy::codebook::Codebook::for_class(BeamwidthClass::Narrow),
            ),
            st_phy::codebook::BeamId(4),
        ));
        rec.close_segment(&state);
        let ue = rec.into_trace(3, 4, ProtocolKind::Reactive);
        FleetTrace {
            runs: vec![RunTrace {
                label: "unit".into(),
                seed: 7,
                duration: SimDuration::from_secs(1),
                live_wall_s: 0.25,
                tracker: TrackerConfig::paper_defaults(),
                codebook: BeamwidthClass::Narrow,
                ues: vec![ue],
            }],
        }
    }

    #[test]
    fn consecutive_ticks_compress_into_one_run() {
        let trace = sample_trace();
        let seg = &trace.runs[0].ues[0].segments[0];
        // 5 ticks + 1 RSS sample → 1 TickRun record + 1 RSS record.
        assert_eq!(seg.n_events, 2);
        let mut buf: &[u8] = &seg.events;
        let (first, anchor) = ProtocolEvent::decode_from(&mut buf, SimTime::ZERO).unwrap();
        assert_eq!(
            first,
            ProtocolEvent::TickRun {
                start: t(0),
                period: SimDuration::from_millis(1),
                count: 5,
            }
        );
        // The anchor lands on the run's final tick, so the next delta is
        // small.
        assert_eq!(anchor, t(4));
        let (second, _) = ProtocolEvent::decode_from(&mut buf, anchor).unwrap();
        assert_eq!(
            second,
            ProtocolEvent::ServingRss {
                at: t(5),
                rss: Dbm(-61.5),
            }
        );
        assert!(buf.is_empty());
        assert_eq!(seg.action_count, 1);
    }

    #[test]
    fn irregular_ticks_split_runs() {
        let mut rec = UeRecorder::new();
        rec.open_segment(0, 0, None);
        // 1 ms, 1 ms, then a 3 ms gap: run of 3, then a fresh run of 2.
        for &ms in &[0u64, 1, 2, 5, 6] {
            rec.record_event(&ProtocolEvent::Tick { at: t(ms) });
        }
        rec.record_event(&ProtocolEvent::DwellComplete { at: t(7) });
        rec.record_actions(&[]);
        let state = ProtocolState::Reactive(silent_tracker::ReactiveState::initial(
            &silent_tracker::ProtocolCtx::new(
                TrackerConfig::paper_defaults(),
                st_mac::pdu::UeId(1),
                st_mac::pdu::CellId(0),
                st_phy::codebook::Codebook::for_class(BeamwidthClass::Narrow),
            ),
            st_phy::codebook::BeamId(0),
        ));
        rec.close_segment(&state);
        let ue = rec.into_trace(0, 1, ProtocolKind::Reactive);
        let seg = &ue.segments[0];
        assert_eq!(seg.n_events, 3);
        let mut buf: &[u8] = &seg.events;
        let (first, anchor) = ProtocolEvent::decode_from(&mut buf, SimTime::ZERO).unwrap();
        assert_eq!(
            first,
            ProtocolEvent::TickRun {
                start: t(0),
                period: SimDuration::from_millis(1),
                count: 3,
            }
        );
        let (second, _) = ProtocolEvent::decode_from(&mut buf, anchor).unwrap();
        assert_eq!(
            second,
            ProtocolEvent::TickRun {
                start: t(5),
                period: SimDuration::from_millis(1),
                count: 2,
            }
        );
    }

    #[test]
    fn trace_round_trips_byte_exactly() {
        let trace = sample_trace();
        let bytes = trace.to_bytes();
        let back = FleetTrace::from_bytes(&bytes).unwrap();
        assert_eq!(back, trace);
        // Canonical: re-encoding the decoded trace is byte-identical.
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn corrupt_traces_are_rejected() {
        let trace = sample_trace();
        let mut bytes = trace.to_bytes();
        assert!(FleetTrace::from_bytes(&bytes[..4]).is_err(), "bad magic");
        bytes.push(0);
        assert!(FleetTrace::from_bytes(&bytes).is_err(), "trailing bytes");
    }
}
