//! Trace replay: re-evaluate the protocol core against a recorded event
//! stream, with no physical layer and no event executive in the loop.
//!
//! Because the protocol core is a pure fold
//! (`step(ctx, state, event) -> (state, actions)`), replay is just:
//! rebuild each segment's [`ProtocolCtx`], restore the anchor (initial
//! serving beam, optional warm-start seed), decode the recorded events
//! and fold them. For the **recorded** configuration the refold is
//! byte-identical to the live run — [`replay_run`] proves it by
//! re-deriving each segment's action digest and final-state snapshot and
//! comparing them byte for byte.
//!
//! Replaying under a **different** [`TrackerConfig`]
//! ([`replay_run_with_config`]) re-evaluates a protocol variant against
//! the same radio history in milliseconds instead of re-simulating.
//! Caveat: the replay is open-loop — the recorded events embody the
//! *recorded* protocol's beam choices (RSS samples were measured on the
//! beams it selected), so variant results are an approximation whose
//! fidelity degrades with how far the variant's beam trajectory diverges.
//! Digest verification is disabled in that mode.

use std::sync::Arc;

use silent_tracker::wire::Fnv64;
use silent_tracker::{
    step_mut, ProtocolCtx, ProtocolEvent, ProtocolState, ReactiveState, SilentState, TrackerConfig,
};
use st_mac::pdu::{CellId, UeId};
use st_phy::codebook::{BeamId, Codebook};

use crate::config::ProtocolKind;
use crate::trace::{RunTrace, SegmentTrace, UeTrace};

/// Aggregate of one replayed run.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    pub label: String,
    pub ues: u64,
    pub segments: u64,
    /// Event records folded (tick runs count as one).
    pub events: u64,
    /// Actions the refold emitted.
    pub actions: u64,
    /// Completed handovers implied by the trace (segment boundaries).
    pub handovers: u64,
    /// FNV-1a over the per-segment refolded action digests, in global UE
    /// order — one number summarizing the whole action history.
    pub combined_digest: u64,
    /// UE-seconds of simulated radio time the run covers.
    pub ue_seconds: f64,
    /// Wall-clock seconds the live run took (from the trace header).
    pub live_wall_s: f64,
    /// Byte-equality failures (empty on a verified replay of the
    /// recorded config).
    pub mismatches: Vec<String>,
}

/// Per-UE refold result (internal).
struct UeReplay {
    events: u64,
    actions: u64,
    segment_digests: Vec<u64>,
    mismatches: Vec<String>,
}

fn initial_state(kind: ProtocolKind, ctx: &ProtocolCtx, seg: &SegmentTrace) -> ProtocolState {
    let rx = BeamId(seg.serving_rx);
    match kind {
        ProtocolKind::SilentTracker => {
            let mut s = SilentState::initial(ctx, rx);
            if let Some(w) = &seg.warm {
                s.warm_start(w);
            }
            ProtocolState::Silent(s)
        }
        ProtocolKind::Reactive => ProtocolState::Reactive(ReactiveState::initial(ctx, rx)),
    }
}

fn replay_ue(cfg: TrackerConfig, codebook: &Arc<Codebook>, ut: &UeTrace, verify: bool) -> UeReplay {
    let mut r = UeReplay {
        events: 0,
        actions: 0,
        segment_digests: Vec::with_capacity(ut.segments.len()),
        mismatches: Vec::new(),
    };
    let mut out = Vec::new();
    let mut scratch = Vec::new();
    for (k, seg) in ut.segments.iter().enumerate() {
        let ctx = ProtocolCtx::new(
            cfg,
            UeId(ut.uid),
            CellId(seg.serving_cell),
            Arc::clone(codebook),
        );
        let mut state = initial_state(ut.kind, &ctx, seg);
        let mut digest = Fnv64::new();
        let mut actions = 0u64;
        let mut buf: &[u8] = &seg.events;
        let mut events = 0u64;
        let mut failed = false;
        let mut prev = st_des::SimTime::ZERO;
        while !buf.is_empty() {
            let ev = match ProtocolEvent::decode_from(&mut buf, prev) {
                Ok((ev, anchor)) => {
                    prev = anchor;
                    ev
                }
                Err(e) => {
                    r.mismatches
                        .push(format!("ue {} seg {k}: event decode: {e}", ut.id));
                    failed = true;
                    break;
                }
            };
            events += 1;
            out.clear();
            step_mut(&ctx, &mut state, &ev, &mut out);
            for a in &out {
                scratch.clear();
                a.encode(&mut scratch);
                digest.write(&scratch);
            }
            actions += out.len() as u64;
        }
        let digest = digest.finish();
        r.events += events;
        r.actions += actions;
        r.segment_digests.push(digest);
        if verify && !failed {
            if events != seg.n_events {
                r.mismatches.push(format!(
                    "ue {} seg {k}: folded {events} events, trace recorded {}",
                    ut.id, seg.n_events
                ));
            }
            if actions != seg.action_count || digest != seg.action_digest {
                r.mismatches.push(format!(
                    "ue {} seg {k}: action stream diverged \
                     ({actions} actions digest {digest:016x}, live {} digest {:016x})",
                    ut.id, seg.action_count, seg.action_digest
                ));
            }
            let mut final_bytes = Vec::with_capacity(seg.final_state.len());
            state.encode(&mut final_bytes);
            if final_bytes != seg.final_state {
                r.mismatches
                    .push(format!("ue {} seg {k}: final state diverged", ut.id));
            }
        }
    }
    r
}

fn replay_inner(run: &RunTrace, cfg: TrackerConfig, workers: usize, verify: bool) -> ReplayReport {
    let codebook = Arc::new(Codebook::for_class(run.codebook));
    let n = run.ues.len();
    let workers = workers.clamp(1, n.max(1));
    let chunk = n.div_ceil(workers).max(1);
    let mut results: Vec<Option<UeReplay>> = (0..n).map(|_| None).collect();

    std::thread::scope(|scope| {
        for (slots, ues) in results.chunks_mut(chunk).zip(run.ues.chunks(chunk)) {
            let codebook = &codebook;
            scope.spawn(move || {
                for (slot, ut) in slots.iter_mut().zip(ues) {
                    *slot = Some(replay_ue(cfg, codebook, ut, verify));
                }
            });
        }
    });

    let mut report = ReplayReport {
        label: run.label.clone(),
        ues: n as u64,
        segments: run.n_segments(),
        events: 0,
        actions: 0,
        handovers: run
            .ues
            .iter()
            .map(|u| u.segments.len().saturating_sub(1) as u64)
            .sum(),
        combined_digest: 0,
        ue_seconds: run.ue_seconds(),
        live_wall_s: run.live_wall_s,
        mismatches: Vec::new(),
    };
    // Deterministic merge in global UE order, independent of workers.
    let mut combined = Fnv64::new();
    for r in results.into_iter().flatten() {
        report.events += r.events;
        report.actions += r.actions;
        for d in r.segment_digests {
            combined.write(&d.to_be_bytes());
        }
        report.mismatches.extend(r.mismatches);
    }
    report.combined_digest = combined.finish();
    report
}

/// Replay one recorded run under its **recorded** configuration,
/// verifying byte equality with the live action streams and final
/// states. A clean replay returns `mismatches.is_empty()`.
pub fn replay_run(run: &RunTrace, workers: usize) -> ReplayReport {
    replay_inner(run, run.tracker, workers, true)
}

/// Replay `run` `passes` times and return the report plus the minimum
/// wall-clock across passes. The refold is deterministic, so every pass
/// produces the same report and the minimum is the noise-robust
/// throughput estimator on a shared or loaded machine.
pub fn replay_run_timed(run: &RunTrace, workers: usize, passes: usize) -> (ReplayReport, f64) {
    let mut best: Option<(ReplayReport, f64)> = None;
    for _ in 0..passes.max(1) {
        let start = std::time::Instant::now();
        let rep = replay_run(run, workers);
        let wall = start.elapsed().as_secs_f64();
        match &best {
            Some((_, b)) if *b <= wall => {}
            _ => best = Some((rep, wall)),
        }
    }
    best.expect("at least one replay pass")
}

/// Replay one recorded run under a **different** configuration
/// (open-loop re-evaluation; see the module docs for the caveat).
/// Digest verification is off — the action stream is *expected* to
/// differ from the recording.
pub fn replay_run_with_config(
    run: &RunTrace,
    tracker: TrackerConfig,
    workers: usize,
) -> ReplayReport {
    replay_inner(run, tracker, workers, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{FleetTrace, UeRecorder};
    use st_des::{SimDuration, SimTime};
    use st_phy::codebook::BeamwidthClass;
    use st_phy::units::{Db, Dbm};

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    /// Record a little protocol history by hand (no simulator), then
    /// replay it and check byte equality end to end.
    fn record_one(kind: ProtocolKind) -> RunTrace {
        let cfg = TrackerConfig::paper_defaults();
        let codebook = Arc::new(Codebook::for_class(BeamwidthClass::Narrow));
        let mut proto = crate::proto::Proto::new(
            kind,
            cfg,
            UeId(5),
            CellId(0),
            Arc::clone(&codebook),
            BeamId(4),
        );
        proto.start_recording();
        for k in 0..40u64 {
            proto.handle(silent_tracker::ProtocolEvent::Tick { at: t(k) });
            if k % 5 == 0 {
                proto.handle(silent_tracker::ProtocolEvent::ServingRss {
                    at: t(k),
                    rss: Dbm(-60.0 - k as f64 * 0.3),
                });
            }
            if k % 10 == 3 {
                proto.handle(silent_tracker::ProtocolEvent::NeighborSsb {
                    at: t(k),
                    cell: CellId(1),
                    tx_beam: 2,
                    rx_beam: proto.gap_rx_beam(),
                    rss: Dbm(-58.0),
                });
                proto.handle(silent_tracker::ProtocolEvent::DwellComplete { at: t(k + 1) });
            }
        }
        let rec = proto.finish_recording().unwrap();
        let ue = rec.into_trace(0, 5, kind);
        RunTrace {
            label: "unit".into(),
            seed: 1,
            duration: SimDuration::from_millis(40),
            live_wall_s: 0.01,
            tracker: cfg,
            codebook: BeamwidthClass::Narrow,
            ues: vec![ue],
        }
    }

    #[test]
    fn replay_reproduces_the_live_fold_byte_exactly() {
        for kind in [ProtocolKind::SilentTracker, ProtocolKind::Reactive] {
            let run = record_one(kind);
            assert!(run.n_events() > 0);
            let rep = replay_run(&run, 2);
            assert_eq!(rep.mismatches, Vec::<String>::new(), "{kind:?}");
            assert_eq!(rep.ues, 1);
            // The trace round-trips through bytes and still verifies.
            let trace = FleetTrace {
                runs: vec![run.clone()],
            };
            let back = FleetTrace::from_bytes(&trace.to_bytes()).unwrap();
            let rep2 = replay_run(&back.runs[0], 1);
            assert!(rep2.mismatches.is_empty());
            assert_eq!(rep2.combined_digest, rep.combined_digest);
        }
    }

    #[test]
    fn variant_config_replays_open_loop() {
        let run = record_one(ProtocolKind::SilentTracker);
        let mut variant = run.tracker;
        variant.switch_threshold = Db(1.0);
        variant.handover_hysteresis = Db(1.5);
        let rep = replay_run_with_config(&run, variant, 1);
        // No verification, so no mismatches — but the fold ran.
        assert!(rep.mismatches.is_empty());
        assert_eq!(rep.events, run.n_events());
    }

    #[test]
    fn tampered_traces_fail_verification() {
        let mut run = record_one(ProtocolKind::SilentTracker);
        run.ues[0].segments[0].action_digest ^= 1;
        let rep = replay_run(&run, 1);
        assert_eq!(rep.mismatches.len(), 1);
        assert!(rep.mismatches[0].contains("action stream diverged"));
    }

    /// Warm-start seeds recorded in the segment header are re-applied by
    /// replay: a segment anchored with a warm monitor folds differently
    /// from a cold anchor, and verification still passes because the
    /// recording captured the seed.
    #[test]
    fn warm_start_seed_round_trips_through_replay() {
        let cfg = TrackerConfig {
            warm_start_handover: true,
            ..TrackerConfig::paper_defaults()
        };
        let codebook = Arc::new(Codebook::for_class(BeamwidthClass::Narrow));
        let mut warm_src = silent_tracker::measurement::LinkMonitor::new(cfg.ewma_alpha);
        warm_src.on_sample(t(0), Dbm(-55.0));
        warm_src.on_sample(t(1), Dbm(-56.0));

        // The fleet engine's re-anchoring path: fresh proto on the new
        // serving cell, warm-start it, then resume recording with the
        // applied seed in the segment header.
        let mut proto = crate::proto::Proto::new(
            ProtocolKind::SilentTracker,
            cfg,
            UeId(5),
            CellId(1),
            Arc::clone(&codebook),
            BeamId(4),
        );
        proto.warm_start(&warm_src);
        proto.resume_recording(Box::new(UeRecorder::new()), Some(warm_src));
        for k in 0..10u64 {
            proto.handle(silent_tracker::ProtocolEvent::ServingRss {
                at: t(k),
                rss: Dbm(-60.0),
            });
        }
        let rec = proto.finish_recording().unwrap();
        let ue = rec.into_trace(0, 5, ProtocolKind::SilentTracker);
        assert_eq!(ue.segments[0].warm, Some(warm_src));
        let run = RunTrace {
            label: "warm".into(),
            seed: 1,
            duration: SimDuration::from_millis(10),
            live_wall_s: 0.01,
            tracker: cfg,
            codebook: BeamwidthClass::Narrow,
            ues: vec![ue],
        };
        let rep = replay_run(&run, 1);
        assert!(rep.mismatches.is_empty(), "{:?}", rep.mismatches);
    }
}
