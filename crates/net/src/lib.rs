//! # st-net — event-driven mm-wave network scenarios
//!
//! The top of the substrate stack: base stations sweeping SSB beams, one
//! mobile running a protocol from the `silent-tracker` crate, a radio in
//! between built from `st-phy` channels, all driven by the `st-des`
//! executive.
//!
//! * [`config`] — scenario description (cells, radio, faults, protocol
//!   arm) with validation.
//! * [`radio`] — shared radio plumbing: static cell [`radio::Sites`] and a
//!   per-UE [`radio::LinkSet`] of stochastic channels (also used by the
//!   `st_fleet` multi-UE engine).
//! * [`proto`] — the protocol arms behind one dispatch surface (and the
//!   attachment point for trace recording).
//! * [`scenario`] — the executor translating between physics and the
//!   sans-IO protocol engines; one seeded trial per run.
//! * [`scenarios`] — the paper's three mobility cases (walk, rotation,
//!   vehicular) pre-wired.
//! * [`outcome`] — per-run results the benches aggregate into the
//!   paper's figures.
//! * [`trace`] — end-to-end protocol trace recording: per-UE event
//!   streams, action digests and final-state snapshots in a compact
//!   binary format.
//! * [`replay`] — refold recorded traces without `st_phy`/`st_des`;
//!   byte-identical to live for the recorded config.

pub mod config;
pub mod outcome;
pub mod proto;
pub mod radio;
pub mod replay;
pub mod scenario;
pub mod scenarios;
pub mod trace;

pub use config::{CellConfig, FaultConfig, ProtocolKind, ScenarioConfig};
pub use outcome::{RunOutcome, SearchPass};
pub use proto::Proto;
pub use radio::{LinkSet, LinkStats, Sites};
pub use replay::{replay_run, replay_run_timed, replay_run_with_config, ReplayReport};
pub use scenario::Scenario;
pub use trace::{FleetTrace, RunTrace, SegmentTrace, UeRecorder, UeTrace};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{device_rotation, eval_config, human_walk, vehicular};

    #[test]
    fn walk_scenario_completes_soft_handover() {
        let cfg = eval_config(ProtocolKind::SilentTracker);
        let out = human_walk(&cfg, 42).run();
        assert!(out.acquired_at.is_some(), "neighbor never acquired");
        assert!(out.handover_succeeded(), "handover did not complete");
        assert!(
            out.tracker_stats.unwrap().searches_succeeded >= 1,
            "{:?}",
            out.tracker_stats
        );
        // Make-before-break: interruption is a few tens of ms, not the
        // hundreds a hard handover pays.
        let intr = out.interruption.expect("interruption recorded");
        assert!(
            intr.as_millis_f64() < 200.0,
            "interruption {intr} too long for soft handover"
        );
    }

    #[test]
    fn rotation_scenario_completes() {
        let cfg = eval_config(ProtocolKind::SilentTracker);
        let out = device_rotation(&cfg, 3).run();
        assert!(out.handover_succeeded(), "rotation handover failed");
        // Rotation at 120°/s forces silent beam switches while tracking.
        let st = out.tracker_stats.unwrap();
        assert!(st.nrba_switches > 0, "no N-RBA switches under rotation");
    }

    #[test]
    fn vehicular_scenario_completes() {
        let cfg = eval_config(ProtocolKind::SilentTracker);
        let out = vehicular(&cfg, 3).run();
        assert!(out.handover_succeeded(), "vehicular handover failed");
    }

    #[test]
    fn same_seed_same_outcome() {
        let cfg = eval_config(ProtocolKind::SilentTracker);
        let a = human_walk(&cfg, 11).run();
        let b = human_walk(&cfg, 11).run();
        assert_eq!(a.handover_complete_at, b.handover_complete_at);
        assert_eq!(a.acquired_at, b.acquired_at);
        assert_eq!(a.search_passes, b.search_passes);
        assert_eq!(a.rach_attempts, b.rach_attempts);
        assert_eq!(a.tracker_stats, b.tracker_stats);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = eval_config(ProtocolKind::SilentTracker);
        let a = human_walk(&cfg, 1).run();
        let b = human_walk(&cfg, 2).run();
        // Completion times are continuous-valued; collision means a bug.
        assert_ne!(a.handover_complete_at, b.handover_complete_at);
    }

    #[test]
    fn reactive_baseline_pays_hard_handover() {
        let mut cfg = eval_config(ProtocolKind::Reactive);
        cfg.duration = st_des::SimDuration::from_secs(60);
        let out = human_walk(&cfg, 5).run();
        // The reactive arm only moves after RLF...
        assert!(out.rlf_at.is_some(), "serving link never failed");
        if out.handover_succeeded() {
            let intr = out.interruption.unwrap();
            // ...and pays the outage + search + penalty.
            assert!(
                intr.as_millis_f64() > 80.0,
                "hard handover suspiciously fast: {intr}"
            );
        }
    }

    #[test]
    fn tracked_beam_stays_aligned() {
        let cfg = eval_config(ProtocolKind::SilentTracker);
        let out = human_walk(&cfg, 9).run();
        let frac = out.alignment_fraction().expect("alignment recorded");
        assert!(frac > 0.6, "aligned only {frac} of tracked time");
    }
}
