//! Pre-built scenario constructors for the paper's three mobility cases.
//!
//! Each returns a configured [`Scenario`] for one seeded trial. Geometry: two cells 80 m apart at the sides of a
//! street canyon; the mobile operates in the overlap region around
//! x = 0 where both cells are marginal — the transition regime of §2.

use std::sync::Arc;

use st_des::SimDuration;
use st_env::{bus_route, crowd_crossing, DynamicEnvironment};
use st_mobility::{Composite, DeviceRotation, HumanWalk, TurnAt, Vehicular};
use st_phy::geometry::{Radians, Vec2};

use crate::config::{ProtocolKind, ScenarioConfig};
use crate::scenario::Scenario;

/// The paper-walk mobile every walking scenario shares: v = 1.4 m/s
/// through the cell overlap, starting slightly on the serving side of
/// the boundary. Trials start at slightly different points (and gait
/// phases) so completion times vary with the seed.
fn paper_walker(seed: u64) -> HumanWalk {
    let jitter = (seed % 7) as f64 * 0.25;
    HumanWalk::paper_walk(Vec2::new(-4.0 + jitter, 0.0), Radians(0.0))
        .with_phase(seed as f64 * 0.61)
}

/// The paper's human-walk case: v = 1.4 m/s through the cell overlap,
/// starting slightly on the serving side of the boundary.
pub fn human_walk(cfg_base: &ScenarioConfig, seed: u64) -> Scenario {
    let mut cfg = cfg_base.clone();
    cfg.seed = seed;
    Scenario::new(cfg, Box::new(paper_walker(seed)))
}

/// The paper's rotation case: ω = 120 °/s at a fixed point just past the
/// boundary, so the handover trigger arms once the beams are tracked.
pub fn device_rotation(cfg_base: &ScenarioConfig, seed: u64) -> Scenario {
    let mut cfg = cfg_base.clone();
    cfg.seed = seed;
    let jitter = (seed % 5) as f64 * 0.4;
    let rot = DeviceRotation::paper_rotation(
        Vec2::new(2.0 + jitter, 0.0),
        Radians((seed % 12) as f64 * 0.5),
    );
    Scenario::new(cfg, Box::new(rot))
}

/// The paper's vehicular case: 20 mph down the street through the
/// overlap region.
pub fn vehicular(cfg_base: &ScenarioConfig, seed: u64) -> Scenario {
    let mut cfg = cfg_base.clone();
    cfg.seed = seed;
    let jitter = (seed % 9) as f64 * 0.5;
    let v = Vehicular::paper_vehicular(Vec2::new(-12.0 + jitter, 0.0), Radians(0.0));
    Scenario::new(cfg, Box::new(v))
}

/// Extension scenario beyond the paper: walking *and* turning the device
/// 90° mid-walk (checking the phone / rounding a corner) — the serving
/// and neighbor loops must absorb a 120 °/s heading swing while the
/// geometry is already changing.
pub fn walk_and_turn(cfg_base: &ScenarioConfig, seed: u64) -> Scenario {
    let mut cfg = cfg_base.clone();
    cfg.seed = seed;
    let walk = paper_walker(seed);
    let turn = TurnAt {
        start_s: 0.5 + (seed % 4) as f64 * 0.3,
        turn_rad: std::f64::consts::FRAC_PI_2,
        rate_rad_s: 120f64.to_radians(),
    };
    Scenario::new(cfg, Box::new(Composite::new(walk, turn)))
}

/// Attach geometric blockers to a config (via
/// [`ScenarioConfig::set_dynamics`], which also disarms the stochastic
/// duty cycle — a bus shadow and a random fade stop being
/// indistinguishable). Only opt-in scenarios call this; everything else
/// keeps the stochastic default and its seeded baselines.
fn with_blockers(cfg: &mut ScenarioConfig, blockers: Vec<st_env::Blocker>) {
    cfg.set_dynamics(Arc::new(DynamicEnvironment::new(
        cfg.environment.clone(),
        blockers,
        cfg.channel.carrier,
        cfg.duration.as_secs_f64(),
    )));
}

/// Dynamic-environment scenario: the paper's walk through the cell
/// overlap, but with a pedestrian crowd repeatedly crossing the street in
/// the overlap band — the LOS cuts are *events with geometry* (correlated
/// with where the walker is) instead of a memoryless duty cycle.
pub fn walk_through_crowd(cfg_base: &ScenarioConfig, seed: u64) -> Scenario {
    let mut cfg = cfg_base.clone();
    cfg.seed = seed;
    with_blockers(&mut cfg, crowd_crossing(12, (-15.0, 15.0), 30.0, seed));
    Scenario::new(cfg, Box::new(paper_walker(seed)))
}

/// Dynamic-environment scenario: a bus route sweeping deep shadows down
/// the street every few seconds while the walker crosses the overlap —
/// the canonical "bus crosses the street, the mm-wave link dies" case.
pub fn bus_shadow(cfg_base: &ScenarioConfig, seed: u64) -> Scenario {
    let mut cfg = cfg_base.clone();
    cfg.seed = seed;
    // Two buses looping between the walker (y ≈ 0) and the cells
    // (y = 10): one shadow pass roughly every 4 s.
    with_blockers(&mut cfg, bus_route(2, 200.0, 6.0, 8.0, seed));
    Scenario::new(cfg, Box::new(paper_walker(seed)))
}

/// All mobility arms, by name (drives Fig. 2c and the blocker studies).
pub fn by_name(name: &str, cfg_base: &ScenarioConfig, seed: u64) -> Scenario {
    match name {
        "walk" => human_walk(cfg_base, seed),
        "walk_and_turn" => walk_and_turn(cfg_base, seed),
        "rotation" => device_rotation(cfg_base, seed),
        "vehicular" => vehicular(cfg_base, seed),
        "crowd" => walk_through_crowd(cfg_base, seed),
        "bus_shadow" => bus_shadow(cfg_base, seed),
        other => panic!("unknown scenario {other:?}"),
    }
}

/// Convenience: the default Silent Tracker config for the three-scenario
/// evaluation, mirroring `ScenarioConfig::two_cell_edge`.
pub fn eval_config(protocol: ProtocolKind) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::two_cell_edge();
    cfg.protocol = protocol;
    cfg.duration = SimDuration::from_secs(30);
    cfg
}

/// Sanity check used by tests: the mobility arms really have the paper's
/// kinematics.
pub fn paper_kinematics_hold() -> bool {
    let walk = HumanWalk::paper_walk(Vec2::ZERO, Radians(0.0));
    let rot = DeviceRotation::paper_rotation(Vec2::ZERO, Radians(0.0));
    let veh = Vehicular::paper_vehicular(Vec2::ZERO, Radians(0.0));
    (walk.speed_mps - 1.4).abs() < 1e-9
        && (rot.rate_rad_s - 120f64.to_radians()).abs() < 1e-9
        && (veh.speed_mps - 8.9408).abs() < 1e-3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinematics_match_paper() {
        assert!(paper_kinematics_hold());
    }

    #[test]
    #[should_panic(expected = "unknown scenario")]
    fn by_name_rejects_unknown() {
        by_name("teleport", &ScenarioConfig::two_cell_edge(), 1);
    }

    #[test]
    fn constructors_accept_default_config() {
        let cfg = eval_config(ProtocolKind::SilentTracker);
        let _ = human_walk(&cfg, 1);
        let _ = device_rotation(&cfg, 2);
        let _ = vehicular(&cfg, 3);
        let _ = walk_through_crowd(&cfg, 4);
        let _ = bus_shadow(&cfg, 5);
    }

    #[test]
    fn blocker_scenarios_swap_stochastic_for_geometric_blockage() {
        let mut cfg = eval_config(ProtocolKind::SilentTracker);
        cfg.duration = st_des::SimDuration::from_secs(4);
        let out = bus_shadow(&cfg, 2).run();
        // The run executes end to end with the occlusion pass in the
        // hot path and still completes a soft handover.
        assert!(out.handover_succeeded(), "bus-shadow handover failed");
        // Opting in is per-scenario: the plain walk still uses the
        // stochastic process.
        assert!(cfg.dynamics.is_none());
    }
}
