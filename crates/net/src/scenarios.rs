//! Pre-built scenario constructors for the paper's three mobility cases.
//!
//! Each returns a configured [`Scenario`] for one seeded trial. Geometry: two cells 80 m apart at the sides of a
//! street canyon; the mobile operates in the overlap region around
//! x = 0 where both cells are marginal — the transition regime of §2.

use st_des::SimDuration;
use st_mobility::{Composite, DeviceRotation, HumanWalk, TurnAt, Vehicular};
use st_phy::geometry::{Radians, Vec2};

use crate::config::{ProtocolKind, ScenarioConfig};
use crate::scenario::Scenario;

/// The paper's human-walk case: v = 1.4 m/s through the cell overlap,
/// starting slightly on the serving side of the boundary.
pub fn human_walk(cfg_base: &ScenarioConfig, seed: u64) -> Scenario {
    let mut cfg = cfg_base.clone();
    cfg.seed = seed;
    // Trials start at slightly different points so completion times vary.
    let jitter = (seed % 7) as f64 * 0.25;
    let walk = HumanWalk::paper_walk(Vec2::new(-4.0 + jitter, 0.0), Radians(0.0))
        .with_phase(seed as f64 * 0.61);
    Scenario::new(cfg, Box::new(walk))
}

/// The paper's rotation case: ω = 120 °/s at a fixed point just past the
/// boundary, so the handover trigger arms once the beams are tracked.
pub fn device_rotation(cfg_base: &ScenarioConfig, seed: u64) -> Scenario {
    let mut cfg = cfg_base.clone();
    cfg.seed = seed;
    let jitter = (seed % 5) as f64 * 0.4;
    let rot = DeviceRotation::paper_rotation(
        Vec2::new(2.0 + jitter, 0.0),
        Radians((seed % 12) as f64 * 0.5),
    );
    Scenario::new(cfg, Box::new(rot))
}

/// The paper's vehicular case: 20 mph down the street through the
/// overlap region.
pub fn vehicular(cfg_base: &ScenarioConfig, seed: u64) -> Scenario {
    let mut cfg = cfg_base.clone();
    cfg.seed = seed;
    let jitter = (seed % 9) as f64 * 0.5;
    let v = Vehicular::paper_vehicular(Vec2::new(-12.0 + jitter, 0.0), Radians(0.0));
    Scenario::new(cfg, Box::new(v))
}

/// Extension scenario beyond the paper: walking *and* turning the device
/// 90° mid-walk (checking the phone / rounding a corner) — the serving
/// and neighbor loops must absorb a 120 °/s heading swing while the
/// geometry is already changing.
pub fn walk_and_turn(cfg_base: &ScenarioConfig, seed: u64) -> Scenario {
    let mut cfg = cfg_base.clone();
    cfg.seed = seed;
    let jitter = (seed % 7) as f64 * 0.25;
    let walk = HumanWalk::paper_walk(Vec2::new(-4.0 + jitter, 0.0), Radians(0.0))
        .with_phase(seed as f64 * 0.61);
    let turn = TurnAt {
        start_s: 0.5 + (seed % 4) as f64 * 0.3,
        turn_rad: std::f64::consts::FRAC_PI_2,
        rate_rad_s: 120f64.to_radians(),
    };
    Scenario::new(cfg, Box::new(Composite::new(walk, turn)))
}

/// All three mobility arms, by name (drives Fig. 2c).
pub fn by_name(name: &str, cfg_base: &ScenarioConfig, seed: u64) -> Scenario {
    match name {
        "walk" => human_walk(cfg_base, seed),
        "walk_and_turn" => walk_and_turn(cfg_base, seed),
        "rotation" => device_rotation(cfg_base, seed),
        "vehicular" => vehicular(cfg_base, seed),
        other => panic!("unknown scenario {other:?}"),
    }
}

/// Convenience: the default Silent Tracker config for the three-scenario
/// evaluation, mirroring `ScenarioConfig::two_cell_edge`.
pub fn eval_config(protocol: ProtocolKind) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::two_cell_edge();
    cfg.protocol = protocol;
    cfg.duration = SimDuration::from_secs(30);
    cfg
}

/// Sanity check used by tests: the mobility arms really have the paper's
/// kinematics.
pub fn paper_kinematics_hold() -> bool {
    let walk = HumanWalk::paper_walk(Vec2::ZERO, Radians(0.0));
    let rot = DeviceRotation::paper_rotation(Vec2::ZERO, Radians(0.0));
    let veh = Vehicular::paper_vehicular(Vec2::ZERO, Radians(0.0));
    (walk.speed_mps - 1.4).abs() < 1e-9
        && (rot.rate_rad_s - 120f64.to_radians()).abs() < 1e-9
        && (veh.speed_mps - 8.9408).abs() < 1e-3
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinematics_match_paper() {
        assert!(paper_kinematics_hold());
    }

    #[test]
    #[should_panic(expected = "unknown scenario")]
    fn by_name_rejects_unknown() {
        by_name("teleport", &ScenarioConfig::two_cell_edge(), 1);
    }

    #[test]
    fn constructors_accept_default_config() {
        let cfg = eval_config(ProtocolKind::SilentTracker);
        let _ = human_walk(&cfg, 1);
        let _ = device_rotation(&cfg, 2);
        let _ = vehicular(&cfg, 3);
    }
}
