//! The protocol under test behind one dispatch surface, shared by the
//! single-UE executor and the fleet engine.
//!
//! Both arms are sans-IO state machines from the `silent-tracker` crate;
//! [`Proto`] erases which one a given UE runs so the executors can drive
//! heterogeneous populations through one code path. It is also the
//! attachment point for trace recording ([`crate::trace`]): with a
//! [`UeRecorder`] attached, every event folded and every action emitted
//! is captured on the way through [`Proto::handle`] — the executors need
//! no per-event recording code of their own.

use std::sync::Arc;

use silent_tracker::measurement::LinkMonitor;
use silent_tracker::tracker::{Action, Input, SilentTracker, TrackerStats};
use silent_tracker::{ProtocolState, ReactiveHandover, TrackerConfig};
use st_mac::pdu::{CellId, UeId};
use st_mac::timing::TxBeamIndex;
use st_phy::codebook::{BeamId, Codebook};
use st_phy::units::Dbm;

use crate::config::ProtocolKind;
use crate::trace::UeRecorder;

/// The protocol arm a UE runs.
#[derive(Debug)]
enum Arm {
    Silent(Box<SilentTracker>),
    Reactive(Box<ReactiveHandover>),
}

/// Protocol under test, behind one dispatch surface, with an optional
/// trace recorder riding on the event path.
#[derive(Debug)]
pub struct Proto {
    arm: Arm,
    recorder: Option<Box<UeRecorder>>,
}

impl Proto {
    /// Build the protocol arm `kind`, already attached to `serving` on
    /// `serving_rx` (initial access happened before the scenario starts).
    /// The codebook is shared by reference count — a fleet hands the same
    /// `Arc` to every UE (and to every re-anchored protocol) instead of
    /// cloning the beam table per instance.
    pub fn new(
        kind: ProtocolKind,
        config: TrackerConfig,
        ue: UeId,
        serving: CellId,
        codebook: Arc<Codebook>,
        serving_rx: BeamId,
    ) -> Proto {
        let arm = match kind {
            ProtocolKind::SilentTracker => Arm::Silent(Box::new(SilentTracker::new(
                config, ue, serving, codebook, serving_rx,
            ))),
            ProtocolKind::Reactive => Arm::Reactive(Box::new(ReactiveHandover::new(
                config, ue, serving, codebook, serving_rx,
            ))),
        };
        Proto {
            arm,
            recorder: None,
        }
    }

    pub fn kind(&self) -> ProtocolKind {
        match &self.arm {
            Arm::Silent(_) => ProtocolKind::SilentTracker,
            Arm::Reactive(_) => ProtocolKind::Reactive,
        }
    }

    pub fn handle(&mut self, input: Input) -> Vec<Action> {
        if let Some(rec) = &mut self.recorder {
            rec.record_event(&input);
        }
        let out = match &mut self.arm {
            Arm::Silent(t) => t.handle(input),
            Arm::Reactive(r) => r.handle(input),
        };
        if let Some(rec) = &mut self.recorder {
            rec.record_actions(&out);
        }
        out
    }

    pub fn serving_rx_beam(&self) -> BeamId {
        match &self.arm {
            Arm::Silent(t) => t.serving_rx_beam(),
            Arm::Reactive(r) => r.serving_rx_beam(),
        }
    }

    pub fn gap_rx_beam(&self) -> BeamId {
        match &self.arm {
            Arm::Silent(t) => t.gap_rx_beam(),
            Arm::Reactive(r) => r.gap_rx_beam(),
        }
    }

    pub fn search_dwells(&self) -> u64 {
        match &self.arm {
            Arm::Silent(t) => t.stats().search_dwells,
            Arm::Reactive(r) => r.search_dwells(),
        }
    }

    pub fn tracked(&self) -> Option<(CellId, TxBeamIndex, BeamId)> {
        match &self.arm {
            Arm::Silent(t) => t.tracked(),
            Arm::Reactive(_) => None,
        }
    }

    /// Smoothed tracked-neighbor level (Silent Tracker arm only).
    pub fn neighbor_level(&self) -> Option<Dbm> {
        match &self.arm {
            Arm::Silent(t) => t.neighbor_level(),
            Arm::Reactive(_) => None,
        }
    }

    /// Protocol counters (Silent Tracker arm only).
    pub fn stats(&self) -> Option<TrackerStats> {
        match &self.arm {
            Arm::Silent(t) => Some(t.stats()),
            Arm::Reactive(_) => None,
        }
    }

    /// The serving cell the protocol is anchored on.
    pub fn serving_cell(&self) -> CellId {
        match &self.arm {
            Arm::Silent(t) => t.ctx().serving_cell,
            Arm::Reactive(r) => r.ctx().serving_cell,
        }
    }

    /// Snapshot the complete mutable protocol state as a plain value.
    pub fn snapshot(&self) -> ProtocolState {
        match &self.arm {
            Arm::Silent(t) => t.snapshot(),
            Arm::Reactive(r) => r.snapshot(),
        }
    }

    /// The monitor of the tracked neighbor beam (Silent arm only) — the
    /// warm-start seed a driver banks right before completing a handover.
    pub fn tracked_monitor(&self) -> Option<LinkMonitor> {
        match &self.arm {
            Arm::Silent(t) => t.tracked_monitor(),
            Arm::Reactive(_) => None,
        }
    }

    /// Warm-start re-anchoring (Silent arm only): seed the serving
    /// monitor from the monitor that tracked this link pre-handover. The
    /// caller gates on `TrackerConfig::warm_start_handover`.
    pub fn warm_start(&mut self, monitor: &LinkMonitor) {
        if let Arm::Silent(t) = &mut self.arm {
            t.warm_start(monitor);
        }
    }

    // ----- trace recording --------------------------------------------------

    /// Attach a fresh recorder and open the first segment (anchored at
    /// the protocol's current serving cell and receive beam). Call right
    /// after construction, before any event is folded.
    pub fn start_recording(&mut self) {
        let mut rec = Box::new(UeRecorder::new());
        rec.open_segment(self.serving_cell().0, self.serving_rx_beam().0, None);
        self.recorder = Some(rec);
    }

    /// Record causal-attribution marks for a handover completing on this
    /// protocol instance (no-op when recording is off). Call before
    /// [`Proto::finish_recording`] so the marks land in the segment the
    /// handover closes.
    pub fn record_marks(&mut self, m: &silent_tracker::attribution::InterruptionMarks) {
        if let Some(rec) = &mut self.recorder {
            rec.record_marks(m);
        }
    }

    /// Detach the recorder, closing the open segment with the protocol's
    /// final state snapshot. Returns `None` if recording is off.
    pub fn finish_recording(&mut self) -> Option<Box<UeRecorder>> {
        let mut rec = self.recorder.take()?;
        rec.close_segment(&self.snapshot());
        Some(rec)
    }

    /// Re-attach a recorder after a handover re-anchored this protocol
    /// instance: opens the next segment at the new anchor, recording the
    /// warm-start seed (if one was applied) so replay can reproduce it.
    pub fn resume_recording(&mut self, mut rec: Box<UeRecorder>, warm: Option<LinkMonitor>) {
        rec.open_segment(self.serving_cell().0, self.serving_rx_beam().0, warm);
        self.recorder = Some(rec);
    }
}
