//! The protocol under test behind one dispatch surface, shared by the
//! single-UE executor and the fleet engine.
//!
//! Both arms are sans-IO state machines from the `silent-tracker` crate;
//! this enum erases which one a given UE runs so the executors can drive
//! heterogeneous populations through one code path.

use std::sync::Arc;

use silent_tracker::tracker::{Action, Input, SilentTracker, TrackerStats};
use silent_tracker::{ReactiveHandover, TrackerConfig};
use st_mac::pdu::{CellId, UeId};
use st_mac::timing::TxBeamIndex;
use st_phy::codebook::{BeamId, Codebook};
use st_phy::units::Dbm;

use crate::config::ProtocolKind;

/// Protocol under test, behind one dispatch surface.
pub enum Proto {
    Silent(Box<SilentTracker>),
    Reactive(Box<ReactiveHandover>),
}

impl std::fmt::Debug for Proto {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Proto::Silent(_) => write!(f, "Proto::Silent"),
            Proto::Reactive(_) => write!(f, "Proto::Reactive"),
        }
    }
}

impl Proto {
    /// Build the protocol arm `kind`, already attached to `serving` on
    /// `serving_rx` (initial access happened before the scenario starts).
    /// The codebook is shared by reference count — a fleet hands the same
    /// `Arc` to every UE (and to every re-anchored protocol) instead of
    /// cloning the beam table per instance.
    pub fn new(
        kind: ProtocolKind,
        config: TrackerConfig,
        ue: UeId,
        serving: CellId,
        codebook: Arc<Codebook>,
        serving_rx: BeamId,
    ) -> Proto {
        match kind {
            ProtocolKind::SilentTracker => Proto::Silent(Box::new(SilentTracker::new(
                config, ue, serving, codebook, serving_rx,
            ))),
            ProtocolKind::Reactive => Proto::Reactive(Box::new(ReactiveHandover::new(
                config, ue, serving, codebook, serving_rx,
            ))),
        }
    }

    pub fn kind(&self) -> ProtocolKind {
        match self {
            Proto::Silent(_) => ProtocolKind::SilentTracker,
            Proto::Reactive(_) => ProtocolKind::Reactive,
        }
    }

    pub fn handle(&mut self, input: Input) -> Vec<Action> {
        match self {
            Proto::Silent(t) => t.handle(input),
            Proto::Reactive(r) => r.handle(input),
        }
    }

    pub fn serving_rx_beam(&self) -> BeamId {
        match self {
            Proto::Silent(t) => t.serving_rx_beam(),
            Proto::Reactive(r) => r.serving_rx_beam(),
        }
    }

    pub fn gap_rx_beam(&self) -> BeamId {
        match self {
            Proto::Silent(t) => t.gap_rx_beam(),
            Proto::Reactive(r) => r.gap_rx_beam(),
        }
    }

    pub fn search_dwells(&self) -> u64 {
        match self {
            Proto::Silent(t) => t.stats().search_dwells,
            Proto::Reactive(r) => r.search_dwells(),
        }
    }

    pub fn tracked(&self) -> Option<(CellId, TxBeamIndex, BeamId)> {
        match self {
            Proto::Silent(t) => t.tracked(),
            Proto::Reactive(_) => None,
        }
    }

    /// Smoothed tracked-neighbor level (Silent Tracker arm only).
    pub fn neighbor_level(&self) -> Option<Dbm> {
        match self {
            Proto::Silent(t) => t.neighbor_level(),
            Proto::Reactive(_) => None,
        }
    }

    /// Protocol counters (Silent Tracker arm only).
    pub fn stats(&self) -> Option<TrackerStats> {
        match self {
            Proto::Silent(t) => Some(t.stats()),
            Proto::Reactive(_) => None,
        }
    }
}
