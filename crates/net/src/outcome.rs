//! Per-run results: everything the figure benches aggregate.

use silent_tracker::{HandoverReason, TrackerStats};
use st_des::{SimDuration, SimTime};
use st_metrics::TimeSeries;

/// One neighbor-search pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchPass {
    /// Receive-beam dwells consumed (Fig. 2a "Number of Beam Searches").
    pub dwells: usize,
    pub succeeded: bool,
    pub ended_at: SimTime,
}

/// Everything observed in one scenario run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    pub seed: u64,
    /// First successful neighbor acquisition.
    pub acquired_at: Option<SimTime>,
    /// Every search pass (initial acquisition and re-acquisitions).
    pub search_passes: Vec<SearchPass>,
    /// Handover trigger (edge E or serving-loss) time.
    pub handover_triggered_at: Option<SimTime>,
    pub handover_reason: Option<HandoverReason>,
    /// Random access + context transfer finished; mobile served by target.
    pub handover_complete_at: Option<SimTime>,
    /// Radio link failure on the serving cell, if it happened.
    pub rlf_at: Option<SimTime>,
    /// RACH preamble transmissions used by the handover.
    pub rach_attempts: u32,
    /// Service interruption: for make-before-break this is trigger →
    /// complete; for a post-RLF handover it is RLF → complete (plus the
    /// hard penalty for the reactive baseline).
    pub interruption: Option<SimDuration>,
    /// 1.0 when the neighbor-track receive beam was within 3 dB of the
    /// ground-truth best beam, 0.0 otherwise (sampled per SSB burst).
    pub alignment: TimeSeries,
    /// Smoothed serving RSS (dBm) over time (seconds).
    pub serving_rss: TimeSeries,
    /// Smoothed tracked-neighbor RSS (dBm) over time (seconds).
    pub neighbor_rss: TimeSeries,
    /// Protocol counters (Silent Tracker arm only).
    pub tracker_stats: Option<TrackerStats>,
    /// Dwells spent searching after RLF (reactive arm only).
    pub reactive_dwells: Option<u64>,
}

impl RunOutcome {
    pub fn new(seed: u64) -> RunOutcome {
        RunOutcome {
            seed,
            acquired_at: None,
            search_passes: Vec::new(),
            handover_triggered_at: None,
            handover_reason: None,
            handover_complete_at: None,
            rlf_at: None,
            rach_attempts: 0,
            interruption: None,
            alignment: TimeSeries::new("aligned"),
            serving_rss: TimeSeries::new("serving_rss_dbm"),
            neighbor_rss: TimeSeries::new("neighbor_rss_dbm"),
            tracker_stats: None,
            reactive_dwells: None,
        }
    }

    /// Did the run complete a handover?
    pub fn handover_succeeded(&self) -> bool {
        self.handover_complete_at.is_some()
    }

    /// Dwells used by the first *successful* search pass.
    pub fn first_success_dwells(&self) -> Option<usize> {
        self.search_passes
            .iter()
            .find(|p| p.succeeded)
            .map(|p| p.dwells)
    }

    /// Overall search success rate across passes in this run.
    pub fn search_success_rate(&self) -> Option<f64> {
        if self.search_passes.is_empty() {
            return None;
        }
        let ok = self.search_passes.iter().filter(|p| p.succeeded).count();
        Some(ok as f64 / self.search_passes.len() as f64)
    }

    /// Fraction of tracked time the receive beam was aligned (≤ 3 dB off
    /// the ground-truth best beam).
    pub fn alignment_fraction(&self) -> Option<f64> {
        self.alignment.fraction_where(|v| v > 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn accessors_on_empty_outcome() {
        let o = RunOutcome::new(7);
        assert!(!o.handover_succeeded());
        assert_eq!(o.first_success_dwells(), None);
        assert_eq!(o.search_success_rate(), None);
        assert_eq!(o.alignment_fraction(), None);
        assert_eq!(o.seed, 7);
    }

    #[test]
    fn search_pass_accounting() {
        let mut o = RunOutcome::new(1);
        o.search_passes.push(SearchPass {
            dwells: 40,
            succeeded: false,
            ended_at: t(800),
        });
        o.search_passes.push(SearchPass {
            dwells: 7,
            succeeded: true,
            ended_at: t(950),
        });
        assert_eq!(o.first_success_dwells(), Some(7));
        assert_eq!(o.search_success_rate(), Some(0.5));
    }

    #[test]
    fn alignment_fraction_uses_time_weighting() {
        let mut o = RunOutcome::new(1);
        o.alignment.push(0.0, 1.0);
        o.alignment.push(0.8, 0.0);
        o.alignment.push(1.0, 0.0);
        assert!((o.alignment_fraction().unwrap() - 0.8).abs() < 1e-12);
    }
}
