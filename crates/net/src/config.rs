//! Scenario configuration: cells, radio, protocol arm, faults.

use std::sync::Arc;

use silent_tracker::TrackerConfig;
use st_des::SimDuration;
use st_env::DynamicEnvironment;
use st_mac::rach::{PrachConfig, RachConfig};
use st_mac::schedule::GapSchedule;
use st_mac::timing::SsbConfig;
use st_phy::channel::{ChannelConfig, Environment};
use st_phy::codebook::BeamwidthClass;
use st_phy::geometry::{Radians, Vec2};
use st_phy::link::RadioConfig;

/// One base station.
#[derive(Debug, Clone, Copy)]
pub struct CellConfig {
    pub position: Vec2,
    pub heading: Radians,
    /// Transmit beams swept per SSB burst set.
    pub n_tx_beams: u16,
}

impl CellConfig {
    pub fn at(x: f64, y: f64) -> CellConfig {
        CellConfig {
            position: Vec2::new(x, y),
            heading: Radians(0.0),
            n_tx_beams: 16,
        }
    }
}

/// Which protocol drives the mobile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolKind {
    /// The paper's contribution.
    SilentTracker,
    /// Reactive hard-handover baseline.
    Reactive,
}

/// Control-plane fault injection (smoltcp-style knobs).
#[derive(Debug, Clone, Copy)]
pub struct FaultConfig {
    /// Probability that the serving BS never answers a beam-switch
    /// request (exercises edge G).
    pub drop_assist_probability: f64,
    /// Extra delay added to cell assistance beyond the processing time.
    pub assist_extra_delay: SimDuration,
    /// Probability that any RACH message (either direction) is lost
    /// independently of SNR.
    pub drop_rach_probability: f64,
}

impl FaultConfig {
    pub fn none() -> FaultConfig {
        FaultConfig {
            drop_assist_probability: 0.0,
            assist_extra_delay: SimDuration::ZERO,
            drop_rach_probability: 0.0,
        }
    }
}

/// Full scenario description (mobility is passed separately — it is a
/// trait object and scenarios build it per trial).
#[derive(Debug, Clone)]
pub struct ScenarioConfig {
    pub cells: Vec<CellConfig>,
    /// Static propagation environment (walls for the ray tracer).
    pub environment: Environment,
    /// Optional dynamic environment: moving geometric blockers occluding
    /// rays with knife-edge diffraction. `None` (the default) keeps the
    /// stochastic per-link blockage process as the only blockage source,
    /// so every seeded baseline is untouched unless a scenario opts in.
    /// When set, its static walls take precedence over `environment`.
    /// Opt in via [`ScenarioConfig::set_dynamics`], which also disarms
    /// the stochastic process — assigning the field directly would run
    /// both blockage models at once and attenuate every link twice.
    pub dynamics: Option<Arc<DynamicEnvironment>>,
    /// Index into `cells` of the initial serving cell.
    pub initial_serving: usize,
    pub ue_codebook: BeamwidthClass,
    /// Override the mobile's codebook with an explicit one (e.g. a
    /// multi-panel ULA build) instead of the sectored `ue_codebook`
    /// class. Used by the pattern-realism ablation.
    pub custom_ue_codebook: Option<st_phy::codebook::Codebook>,
    pub protocol: ProtocolKind,
    pub tracker: TrackerConfig,
    pub channel: ChannelConfig,
    pub radio: RadioConfig,
    pub prach: PrachConfig,
    pub rach: RachConfig,
    pub gaps: GapSchedule,
    /// Serving-link measurement period.
    pub serving_meas_period: SimDuration,
    /// One-way backhaul latency between base stations.
    pub backhaul_latency: SimDuration,
    /// Extra connection re-establishment time paid by a *hard* handover
    /// (authentication, core signalling, context rebuild).
    pub hard_handover_penalty: SimDuration,
    /// BS processing time before cell assistance is transmitted.
    pub assist_processing: SimDuration,
    pub fault: FaultConfig,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Master seed; trials use seed + trial index.
    pub seed: u64,
    /// Stop the run as soon as the handover completes.
    pub stop_at_handover: bool,
}

impl ScenarioConfig {
    /// Two cells 80 m apart on a street; the wall geometry and radio
    /// parameters approximate the paper's 60 GHz testbed deployment.
    pub fn two_cell_edge() -> ScenarioConfig {
        ScenarioConfig {
            cells: vec![CellConfig::at(-40.0, 10.0), CellConfig::at(40.0, 10.0)],
            environment: Environment::street_canyon(200.0, 30.0),
            dynamics: None,
            initial_serving: 0,
            ue_codebook: BeamwidthClass::Narrow,
            custom_ue_codebook: None,
            protocol: ProtocolKind::SilentTracker,
            tracker: TrackerConfig::paper_defaults(),
            channel: ChannelConfig::outdoor_60ghz(),
            radio: RadioConfig::ni_60ghz_testbed(),
            prach: PrachConfig::nr_default(),
            rach: RachConfig::nr_default(),
            gaps: GapSchedule::dense(),
            serving_meas_period: SimDuration::from_millis(5),
            backhaul_latency: SimDuration::from_millis(3),
            hard_handover_penalty: SimDuration::from_millis(80),
            assist_processing: SimDuration::from_millis(8),
            fault: FaultConfig::none(),
            duration: SimDuration::from_secs(20),
            seed: 1,
            stop_at_handover: true,
        }
    }

    /// SSB configuration of cell `idx`.
    pub fn ssb(&self, idx: usize) -> SsbConfig {
        SsbConfig::nr_fr2(self.cells[idx].n_tx_beams)
    }

    /// Opt into a dynamic environment: geometric occlusion becomes *the*
    /// blockage model, so the geometry-free stochastic duty cycle is
    /// switched off in the same move — a bus shadow and a random fade
    /// must not stack on the same ray. This is the only supported way to
    /// set [`ScenarioConfig::dynamics`].
    pub fn set_dynamics(&mut self, dynamics: Arc<DynamicEnvironment>) {
        self.channel.blockage_rate_hz = 0.0;
        self.dynamics = Some(dynamics);
    }

    pub fn validate(&self) -> Result<(), String> {
        if self.cells.is_empty() {
            return Err("need at least one cell".into());
        }
        if self.initial_serving >= self.cells.len() {
            return Err("initial serving cell out of range".into());
        }
        self.tracker.validate().map_err(|e| e.to_string())?;
        self.gaps.validate().map_err(|e| e.to_string())?;
        for (p, label) in [
            (self.fault.drop_assist_probability, "assist"),
            (self.fault.drop_rach_probability, "rach"),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{label} drop probability out of [0,1]"));
            }
        }
        // The measurement-gap pattern must cover the SSB burst active
        // window, or the mobile could never hear a neighbor burst.
        for idx in 0..self.cells.len() {
            let ssb = self.ssb(idx);
            if ssb.burst_active() > self.gaps.duration {
                return Err(format!(
                    "gap ({}) too short for cell {idx}'s SSB burst ({})",
                    self.gaps.duration,
                    ssb.burst_active()
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scenario_is_valid() {
        ScenarioConfig::two_cell_edge().validate().unwrap();
    }

    #[test]
    fn validation_catches_errors() {
        let mut c = ScenarioConfig::two_cell_edge();
        c.initial_serving = 5;
        assert!(c.validate().is_err());

        let mut c = ScenarioConfig::two_cell_edge();
        c.cells.clear();
        assert!(c.validate().is_err());

        let mut c = ScenarioConfig::two_cell_edge();
        c.fault.drop_assist_probability = 1.5;
        assert!(c.validate().is_err());

        let mut c = ScenarioConfig::two_cell_edge();
        c.cells[0].n_tx_beams = 64;
        c.gaps.duration = SimDuration::from_millis(2);
        assert!(c.validate().is_err(), "gap shorter than burst");
    }

    #[test]
    fn ssb_follows_cell_beam_count() {
        let mut c = ScenarioConfig::two_cell_edge();
        c.cells[1].n_tx_beams = 32;
        assert_eq!(c.ssb(0).n_tx_beams, 16);
        assert_eq!(c.ssb(1).n_tx_beams, 32);
    }
}
