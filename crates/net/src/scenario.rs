//! The event-driven scenario executor: base stations, the mobile, the
//! radio in between, and the protocol under test.
//!
//! One [`Scenario`] = one mobile moving through a multi-cell deployment
//! for one seeded trial. The executor owns the discrete-event clock and
//! translates between the physical world (mobility, channels, SSB
//! sweeps) and the sans-IO protocol engines of the `silent-tracker`
//! crate:
//!
//! * every SSB burst set (all cells synchronized, as in an NR network)
//!   the mobile hears the serving cell on its serving beam, probes the
//!   adjacent serving beams, and — inside measurement gaps — listens for
//!   neighbor SSBs on the protocol's gap beam;
//! * control PDUs travel over the simulated link and are dropped
//!   according to SNR (plus injected faults), which is what makes the
//!   "assistance delayed or lost" edge real;
//! * a handover directive starts the 4-step RACH against the target on
//!   the PRACH occasion bound to the tracked SSB beam, with the session
//!   context fetched over the backhaul (soft) or rebuilt from scratch
//!   after the hard-handover penalty (reactive baseline).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::RngExt as _;

use silent_tracker::tracker::{Action, HandoverDirective, Input};
use silent_tracker::HandoverReason;
use st_des::{Control, Executive, RngStreams, SimDuration, SimTime, Trace, TraceLevel};
use st_mac::pdu::{CellId, Pdu, UeId};
use st_mac::rach::{RachProcedure, RachState};
use st_mac::responder::{RachResponder, ResponderConfig};
use st_mac::timing::TxBeamIndex;
use st_mobility::BoxedModel;
use st_phy::codebook::{BeamId, Codebook};
use st_phy::geometry::Pose;
use st_phy::link::RadioCal;
use st_phy::units::Dbm;

use crate::config::{ProtocolKind, ScenarioConfig};
use crate::outcome::{RunOutcome, SearchPass};
use crate::proto::Proto;
use crate::radio::{LinkSet, Sites};

/// Simulation events.
#[derive(Debug, Clone)]
enum Ev {
    /// SSB burst set `k` of every cell (network-synchronized).
    Burst { k: u64 },
    /// End of the mobile's gap dwell within the current burst period.
    DwellEnd,
    /// Periodic serving-link measurement opportunity.
    ServingMeas,
    /// 1 ms protocol timer tick.
    Tick,
    /// Over-the-air PDU arriving at the mobile from `cell`, transmitted
    /// on `tx_beam`; delivery success is sampled at arrival.
    UeRx {
        cell: usize,
        tx_beam: TxBeamIndex,
        pdu: Pdu,
    },
    /// Over-the-air PDU arriving at base station `cell` (already
    /// SNR-sampled at transmission).
    BsRx { cell: usize, pdu: Pdu },
    /// The serving BS applies a transmit-beam switch and notifies the UE.
    AssistApply { cell: usize, tx_beam: TxBeamIndex },
    /// Transmit (or re-transmit) the RACH preamble at a PRACH occasion.
    RachTry,
}

/// In-flight random access towards the handover target.
struct RachExec {
    target: usize,
    ssb_beam: TxBeamIndex,
    rx_beam: BeamId,
    proc: RachProcedure,
    try_pending: bool,
}

/// One seeded scenario trial.
pub struct Scenario {
    config: ScenarioConfig,
    mobility: BoxedModel,
}

struct World {
    cfg: ScenarioConfig,
    mobility: BoxedModel,
    ue_codebook: Arc<Codebook>,
    sites: Sites,
    links: LinkSet,
    /// Precomputed receiver thresholds (noise floor et al.), derived once
    /// from `cfg.radio` instead of re-deriving a `log10` per probe.
    cal: RadioCal,
    /// Scratch for batched SSB sweeps: one slot per transmit beam of the
    /// cell currently being swept. Reused across cells and bursts.
    sweep_scratch: Vec<Dbm>,
    rach_rng: StdRng,
    fault_rng: StdRng,

    proto: Proto,
    serving: usize,
    /// Serving-link transmit beam each BS uses towards this UE.
    bs_tx_beam: Vec<TxBeamIndex>,
    rlf_count: u32,
    rlf_declared: bool,
    rach: Option<RachExec>,
    /// BS-side RACH responder, one per cell.
    responders: Vec<RachResponder>,
    handover_reason: Option<HandoverReason>,
    /// Cumulative dwell count at the end of the previous search pass.
    pass_dwell_mark: u64,

    outcome: RunOutcome,
    trace: Trace,
    halt: bool,
}

const UE: UeId = UeId(1);
/// Session context token carried in Msg3 for soft handovers.
const CONTEXT_TOKEN: u64 = 0x51_1E_27_AC_4E_12;
/// Short over-the-air + processing delays.
const AIR_DELAY: SimDuration = SimDuration::from_micros(500);
const MSG2_DELAY: SimDuration = SimDuration::from_millis(2);
const MSG4_PROCESSING: SimDuration = SimDuration::from_millis(2);

impl Scenario {
    pub fn new(config: ScenarioConfig, mobility: BoxedModel) -> Scenario {
        config.validate().expect("invalid scenario");
        Scenario { config, mobility }
    }

    /// Run to completion and return the outcome (and the protocol trace).
    pub fn run(self) -> RunOutcome {
        self.run_traced().0
    }

    /// Run and also return the milestone trace (examples print it).
    pub fn run_traced(self) -> (RunOutcome, Trace) {
        let cfg = self.config;
        let streams = RngStreams::new(cfg.seed);
        let ue_codebook = Arc::new(
            cfg.custom_ue_codebook
                .clone()
                .unwrap_or_else(|| Codebook::for_class(cfg.ue_codebook)),
        );
        let mut sites = Sites::new(
            cfg.cells.clone(),
            cfg.environment.clone(),
            cfg.radio,
            cfg.channel,
        );
        if let Some(dynamics) = &cfg.dynamics {
            sites = sites.with_dynamics(Arc::clone(dynamics));
        }
        let links = LinkSet::single_ue(&streams, cfg.channel, sites.len());

        // Initial beams: the mobile completed initial access to the
        // serving cell before the scenario starts, so both ends begin on
        // their ground-truth best beams.
        let ue_pose0 = self.mobility.pose_at(0.0);
        let serving = cfg.initial_serving;
        let bs_tx_beam: Vec<TxBeamIndex> = (0..sites.len())
            .map(|i| sites.best_tx_beam_towards(i, ue_pose0.position))
            .collect();
        let serving_rx =
            ue_codebook.best_beam_towards(ue_pose0.local_bearing_to(cfg.cells[serving].position));

        let proto = Proto::new(
            cfg.protocol,
            cfg.tracker,
            UE,
            CellId(serving as u16),
            Arc::clone(&ue_codebook),
            serving_rx,
        );

        let seed = cfg.seed;
        let duration = cfg.duration;
        let burst_period = cfg.ssb(0).burst_period;
        let burst_active = cfg.ssb(0).burst_active();

        let mut world = World {
            mobility: self.mobility,
            ue_codebook,
            sites,
            links,
            cal: cfg.radio.cal(),
            sweep_scratch: Vec::new(),
            rach_rng: streams.stream("rach"),
            fault_rng: streams.stream("fault"),
            proto,
            serving,
            bs_tx_beam,
            rlf_count: 0,
            rlf_declared: false,
            rach: None,
            responders: (0..cfg.cells.len())
                .map(|_| {
                    RachResponder::new(ResponderConfig {
                        rar_delay: MSG2_DELAY,
                        msg4_delay: MSG4_PROCESSING,
                        backhaul_latency: cfg.backhaul_latency,
                        ..ResponderConfig::nr_default()
                    })
                })
                .collect(),
            handover_reason: None,
            pass_dwell_mark: 0,
            outcome: RunOutcome::new(seed),
            trace: Trace::default(),
            halt: false,
            cfg,
        };

        let mut ex: Executive<Ev> = Executive::new();
        ex.event_budget = 200_000_000;
        ex.schedule_at(SimTime::ZERO, Ev::Burst { k: 0 });
        ex.schedule_at(
            SimTime::ZERO + burst_active + SimDuration::from_millis(1),
            Ev::DwellEnd,
        );
        ex.schedule_in(SimDuration::from_millis(1), Ev::ServingMeas);
        ex.schedule_in(SimDuration::from_micros(500), Ev::Tick);

        let deadline = SimTime::ZERO + duration;
        ex.run(deadline, |ex, now, ev| {
            world.dispatch(ex, now, ev, burst_period);
            if world.halt {
                Control::Halt
            } else {
                Control::Continue
            }
        });

        match world.proto.kind() {
            ProtocolKind::SilentTracker => world.outcome.tracker_stats = world.proto.stats(),
            ProtocolKind::Reactive => {
                world.outcome.reactive_dwells = Some(world.proto.search_dwells());
            }
        }
        (world.outcome, world.trace)
    }
}

impl World {
    fn dispatch(
        &mut self,
        ex: &mut Executive<Ev>,
        now: SimTime,
        ev: Ev,
        burst_period: SimDuration,
    ) {
        self.step_channels(now);
        match ev {
            Ev::Burst { k } => {
                self.on_burst(ex, now);
                ex.schedule_at(
                    SimTime::ZERO + burst_period * (k + 1),
                    Ev::Burst { k: k + 1 },
                );
            }
            Ev::DwellEnd => {
                let actions = self.proto.handle(Input::DwellComplete { at: now });
                self.apply_actions(ex, now, actions);
                ex.schedule_in(burst_period, Ev::DwellEnd);
            }
            Ev::ServingMeas => {
                self.on_serving_meas(ex, now);
                ex.schedule_in(self.cfg.serving_meas_period, Ev::ServingMeas);
            }
            Ev::Tick => {
                let actions = self.proto.handle(Input::Tick { at: now });
                self.apply_actions(ex, now, actions);
                self.poll_rach(ex, now);
                ex.schedule_in(SimDuration::from_millis(1), Ev::Tick);
            }
            Ev::UeRx { cell, tx_beam, pdu } => self.on_ue_rx(ex, now, cell, tx_beam, pdu),
            Ev::BsRx { cell, pdu } => self.on_bs_rx(ex, now, cell, pdu),
            Ev::AssistApply { cell, tx_beam } => {
                self.bs_tx_beam[cell] = tx_beam;
                ex.schedule_in(
                    AIR_DELAY,
                    Ev::UeRx {
                        cell,
                        tx_beam,
                        pdu: Pdu::BeamSwitchCommand {
                            cell: CellId(cell as u16),
                            tx_beam,
                        },
                    },
                );
            }
            Ev::RachTry => self.on_rach_try(ex, now),
        }
    }

    // ----- physics --------------------------------------------------------

    fn step_channels(&mut self, now: SimTime) {
        self.links.step_to(now);
    }

    fn ue_pose(&self, now: SimTime) -> Pose {
        self.mobility.pose_at(now.as_secs_f64())
    }

    /// Downlink RSS from `cell` on (`tx_beam`, `rx_beam`) at `now`.
    /// By channel reciprocity the same figure is used for the uplink.
    fn link_rss(
        &mut self,
        now: SimTime,
        cell: usize,
        tx_beam: TxBeamIndex,
        rx_beam: BeamId,
    ) -> Option<Dbm> {
        let ue = self.ue_pose(now);
        self.links
            .rss(&self.sites, cell, tx_beam, ue, &self.ue_codebook, rx_beam)
    }

    /// Sample whether a control PDU gets through at this SNR.
    fn delivery_ok(&mut self, rss: Option<Dbm>) -> bool {
        let Some(r) = rss else { return false };
        let p = self.cal.packet_success_probability(self.cal.snr(r));
        self.rach_rng.random::<f64>() < p
    }

    // ----- event handlers ---------------------------------------------------

    /// One synchronized SSB burst set across all cells.
    fn on_burst(&mut self, ex: &mut Executive<Ev>, now: SimTime) {
        // Serving link: probe the adjacent receive beams (CSI-RS-like),
        // so the protocol's next mobile-side switch is informed.
        let serving_rx = self.proto.serving_rx_beam();
        let serving = self.serving;
        let tx = self.bs_tx_beam[serving];
        for b in self.ue_codebook.adjacent(serving_rx) {
            if let Some(r) = self.link_rss(now, serving, tx, b) {
                if self.cal.detectable(r) {
                    let actions = self.proto.handle(Input::ServingProbe {
                        at: now,
                        rx_beam: b,
                        rss: r,
                    });
                    self.apply_actions(ex, now, actions);
                }
            }
        }

        // Neighbor cells: the mobile listens on its gap beam during the
        // measurement gap that covers the burst. The whole sweep of a
        // cell is evaluated in one batched pass (single trace, one ray
        // loop), then each SSB is fed to the protocol in beam order —
        // the same inputs, RSS values and RNG draws as probing beam by
        // beam, minus the redundant re-traces. Every swept transmit beam
        // whose SSB is detectable is reported.
        if self.cfg.gaps.in_gap(now) {
            let gap_beam = self.proto.gap_rx_beam();
            for cell in 0..self.cfg.cells.len() {
                if cell == serving && !self.post_rlf_search() {
                    continue;
                }
                let n_beams = self.cfg.cells[cell].n_tx_beams as usize;
                let ue = self.ue_pose(now);
                self.sweep_scratch.resize(n_beams, Dbm(f64::NEG_INFINITY));
                let ue_codebook = Arc::clone(&self.ue_codebook);
                if !self.links.rss_tx_sweep(
                    &self.sites,
                    cell,
                    ue,
                    &ue_codebook,
                    gap_beam,
                    &mut self.sweep_scratch[..n_beams],
                ) {
                    continue;
                }
                for tx_beam in 0..self.cfg.cells[cell].n_tx_beams {
                    let r = self.sweep_scratch[tx_beam as usize];
                    // While no neighbor beam is tracked the protocol is
                    // *acquiring*: an SSB must be decodable (detection +
                    // PBCH margin), or a fading spike through a side
                    // lobe gets latched as a "found" beam pointing 100°+
                    // away. Once tracking, RSRP-style energy detection
                    // on the known beam/probes is enough. Evaluated per
                    // SSB — an earlier SSB of this same burst can flip
                    // the protocol from tracking back to searching.
                    let usable = if self.proto.tracked().is_none() {
                        self.cal.acquirable(r)
                    } else {
                        self.cal.detectable(r)
                    };
                    if usable {
                        let actions = self.proto.handle(Input::NeighborSsb {
                            at: now,
                            cell: CellId(cell as u16),
                            tx_beam,
                            rx_beam: gap_beam,
                            rss: r,
                        });
                        self.apply_actions(ex, now, actions);
                    }
                }
            }
        }

        self.record_alignment(now);
    }

    /// After RLF the reactive baseline may reconnect to any cell,
    /// including the old serving one.
    fn post_rlf_search(&self) -> bool {
        self.rlf_declared && self.proto.kind() == ProtocolKind::Reactive
    }

    /// Ground-truth alignment bookkeeping for the tracked neighbor beam.
    fn record_alignment(&mut self, now: SimTime) {
        let Some((cell, _, rx_beam)) = self.proto.tracked() else {
            return;
        };
        let ue = self.ue_pose(now);
        let aoa = ue.local_bearing_to(self.cfg.cells[cell.0 as usize].position);
        let best = self.ue_codebook.best_beam_towards(aoa);
        let g_best = self.ue_codebook.gain(best, aoa);
        let g_cur = self.ue_codebook.gain(rx_beam, aoa);
        let aligned = (g_best - g_cur).0 <= 3.0;
        self.outcome
            .alignment
            .push(now.as_secs_f64(), if aligned { 1.0 } else { 0.0 });
    }

    fn on_serving_meas(&mut self, ex: &mut Executive<Ev>, now: SimTime) {
        if self.cfg.gaps.in_gap(now) {
            return; // radio is tuned away for neighbor measurements
        }
        if self.rlf_declared && self.rach.is_none() {
            // Disconnected (reactive arm): nothing to measure.
            return;
        }
        let serving = self.serving;
        let tx = self.bs_tx_beam[serving];
        let rx = self.proto.serving_rx_beam();
        let r = self.link_rss(now, serving, tx, rx);
        match r {
            Some(v) if self.cal.detectable(v) => {
                self.rlf_count = 0;
                let actions = self.proto.handle(Input::ServingRss { at: now, rss: v });
                self.apply_actions(ex, now, actions);
                self.outcome.serving_rss.push(now.as_secs_f64(), v.0);
                if let Some(n) = self.proto.neighbor_level() {
                    self.outcome.neighbor_rss.push(now.as_secs_f64(), n.0);
                }
            }
            _ => {
                self.rlf_count += 1;
                let needed = (self.cfg.tracker.serving_timeout.as_nanos()
                    / self.cfg.serving_meas_period.as_nanos())
                .max(2) as u32;
                if self.rlf_count >= needed && !self.rlf_declared {
                    self.rlf_declared = true;
                    self.outcome.rlf_at = Some(now);
                    self.trace
                        .record(now, TraceLevel::Error, "radio link failure on serving cell");
                    let actions = self.proto.handle(Input::ServingLinkLost { at: now });
                    self.apply_actions(ex, now, actions);
                }
            }
        }
    }

    fn on_ue_rx(
        &mut self,
        ex: &mut Executive<Ev>,
        now: SimTime,
        cell: usize,
        tx_beam: TxBeamIndex,
        pdu: Pdu,
    ) {
        // Which receive beam is the mobile pointing at this sender? For
        // the RACH target, the tracker keeps maintaining the beam during
        // the exchange — use its live choice.
        self.refresh_rach_beams();
        let rx_beam = match &self.rach {
            Some(r) if r.target == cell => r.rx_beam,
            _ => self.proto.serving_rx_beam(),
        };
        let r = self.link_rss(now, cell, tx_beam, rx_beam);
        if !self.delivery_ok(r) {
            return;
        }
        if self.fault_rng.random::<f64>() < self.cfg.fault.drop_rach_probability
            && matches!(
                pdu,
                Pdu::RachResponse { .. } | Pdu::ContentionResolution { .. }
            )
        {
            return;
        }
        // RACH messages go to the in-flight procedure.
        if self.rach.as_ref().is_some_and(|r| r.target == cell) {
            let rach = self.rach.as_mut().unwrap();
            let action = rach.proc.on_pdu(now, &pdu);
            let attempts = rach.proc.attempts() as u32;
            let connected = rach.proc.state() == RachState::Connected;
            if let st_mac::rach::RachAction::Transmit(msg3) = action {
                self.outcome.rach_attempts = attempts;
                self.send_to_bs(ex, now, cell, msg3);
            }
            if connected {
                self.complete_handover(now);
            }
            return;
        }
        let actions = self.proto.handle(Input::FromServing { at: now, pdu });
        self.apply_actions(ex, now, actions);
    }

    fn on_bs_rx(&mut self, ex: &mut Executive<Ev>, now: SimTime, cell: usize, pdu: Pdu) {
        match pdu {
            Pdu::BeamSwitchRequest { .. } => {
                if self.fault_rng.random::<f64>() < self.cfg.fault.drop_assist_probability {
                    self.trace
                        .record(now, TraceLevel::Warn, "cell assistance dropped (fault)");
                    return;
                }
                // The BS re-trains its transmit beam towards the mobile
                // (its own sweep + the UE's measurement reports).
                let ue = self.ue_pose(now);
                let best = self.sites.best_tx_beam_towards(cell, ue.position);
                let delay = self.cfg.assist_processing + self.cfg.fault.assist_extra_delay;
                ex.schedule_in(
                    delay,
                    Ev::AssistApply {
                        cell,
                        tx_beam: best,
                    },
                );
                self.trace.record(
                    now,
                    TraceLevel::Info,
                    format!("serving BS re-training tx beam -> {best}"),
                );
            }
            Pdu::RachPreamble { preamble, ssb_beam } => {
                // Target BS answers on the SSB beam the occasion maps to,
                // with the timing advance derived from the true range.
                let distance = self
                    .ue_pose(now)
                    .position
                    .distance(self.cfg.cells[cell].position);
                if let Some(plan) =
                    self.responders[cell].on_preamble(now, preamble, ssb_beam, distance)
                {
                    ex.schedule_in(
                        plan.delay,
                        Ev::UeRx {
                            cell,
                            tx_beam: plan.tx_beam,
                            pdu: plan.pdu,
                        },
                    );
                }
            }
            Pdu::ConnectionRequest { ue, context_token } => {
                // Soft handover: the responder embeds the backhaul
                // context fetch in the Msg4 delay; hard admission is
                // immediate (the mobile pays re-establishment above MAC).
                let temp = self.rach.as_ref().and_then(|r| r.proc.temp_ue());
                let Some(plan) = self.responders[cell].on_msg3(now, temp, ue, context_token) else {
                    return; // lost Msg4 contention (cannot happen single-UE)
                };
                let tx_beam = self.rach.as_ref().map(|r| r.ssb_beam).unwrap_or(0);
                ex.schedule_in(
                    plan.delay,
                    Ev::UeRx {
                        cell,
                        tx_beam,
                        pdu: plan.pdu,
                    },
                );
            }
            _ => {}
        }
    }

    /// Keep the in-flight RACH pointed at the tracker's live beam pair:
    /// the device may rotate/move during the exchange and the tracker
    /// (which stays in N-RBA during random access) follows it.
    fn refresh_rach_beams(&mut self) {
        if let (Some(rach), Some((cell, tx, rx))) = (&mut self.rach, self.proto.tracked()) {
            if cell.0 as usize == rach.target {
                rach.ssb_beam = tx;
                rach.rx_beam = rx;
            }
        }
    }

    fn send_to_bs(&mut self, ex: &mut Executive<Ev>, now: SimTime, cell: usize, pdu: Pdu) {
        // Uplink delivery sampled by reciprocity: same beams, same SNR.
        self.refresh_rach_beams();
        let (tx_beam, rx_beam) = match &self.rach {
            Some(r) if r.target == cell => (r.ssb_beam, r.rx_beam),
            _ => (self.bs_tx_beam[cell], self.proto.serving_rx_beam()),
        };
        let r = self.link_rss(now, cell, tx_beam, rx_beam);
        let faulted = self.fault_rng.random::<f64>() < self.cfg.fault.drop_rach_probability
            && matches!(
                pdu,
                Pdu::RachPreamble { .. } | Pdu::ConnectionRequest { .. }
            );
        if self.delivery_ok(r) && !faulted {
            ex.schedule_in(AIR_DELAY, Ev::BsRx { cell, pdu });
        }
    }

    fn on_rach_try(&mut self, ex: &mut Executive<Ev>, now: SimTime) {
        self.refresh_rach_beams();
        let Some(rach) = &mut self.rach else { return };
        rach.try_pending = false;
        if !matches!(
            rach.proc.state(),
            RachState::Idle | RachState::WaitingRar { .. }
        ) {
            return;
        }
        let preamble: u8 = self
            .rach_rng
            .random_range(0..self.cfg.prach.n_preambles.max(1));
        let (target, ssb_beam) = (rach.target, rach.ssb_beam);
        match rach.proc.send_preamble(now, ssb_beam, preamble) {
            Ok(msg1) => {
                self.outcome.rach_attempts = self.rach.as_ref().unwrap().proc.attempts() as u32;
                self.send_to_bs(ex, now, target, msg1);
            }
            Err(_) => {
                // Exhausted: this access attempt failed.
                self.trace
                    .record(now, TraceLevel::Warn, "RACH attempts exhausted");
                self.abort_rach(ex, now);
            }
        }
    }

    /// A permanently failed access attempt: tear down the RACH state and
    /// let the protocol recover (re-acquire and possibly re-trigger —
    /// make-before-break keeps the serving link alive meanwhile). The run
    /// only ends without a completion if no later attempt succeeds.
    fn abort_rach(&mut self, ex: &mut Executive<Ev>, now: SimTime) {
        self.rach = None;
        let actions = self.proto.handle(Input::RachFailed { at: now });
        self.apply_actions(ex, now, actions);
    }

    /// Retry the preamble on the next occasion after a timeout.
    fn poll_rach(&mut self, ex: &mut Executive<Ev>, now: SimTime) {
        let Some(rach) = &mut self.rach else { return };
        let st = rach.proc.poll(now);
        let mut failed = false;
        match st {
            RachState::Idle if !rach.try_pending => {
                let ssb = self.cfg.ssb(rach.target);
                let at = self.cfg.prach.next_occasion(&ssb, now, rach.ssb_beam);
                rach.try_pending = true;
                ex.schedule_at(at, Ev::RachTry);
            }
            RachState::Failed => {
                self.trace
                    .record(now, TraceLevel::Warn, "RACH failed permanently");
                failed = true;
            }
            _ => {}
        }
        if failed {
            self.abort_rach(ex, now);
        }
    }

    fn complete_handover(&mut self, now: SimTime) {
        let Some(rach) = &self.rach else { return };
        let hard_penalty = match self.cfg.protocol {
            ProtocolKind::Reactive => self.cfg.hard_handover_penalty,
            ProtocolKind::SilentTracker => SimDuration::ZERO,
        };
        let done_at = now + hard_penalty;
        self.outcome.handover_complete_at = Some(done_at);
        self.serving = rach.target;
        // Interruption accounting: make-before-break pays only the access
        // exchange; a post-RLF handover pays the whole outage.
        let start = match self.handover_reason {
            Some(HandoverReason::NeighborStronger) => self.outcome.handover_triggered_at,
            _ => self.outcome.rlf_at.or(self.outcome.handover_triggered_at),
        };
        if let Some(s) = start {
            self.outcome.interruption = Some(done_at.since(s));
        }
        self.trace.record(
            now,
            TraceLevel::Info,
            format!(
                "handover complete to cell{} ({} attempts)",
                rach.target, self.outcome.rach_attempts
            ),
        );
        self.rach = None;
        if self.cfg.stop_at_handover {
            self.halt = true;
        }
    }

    // ----- protocol actions -------------------------------------------------

    fn apply_actions(&mut self, ex: &mut Executive<Ev>, now: SimTime, actions: Vec<Action>) {
        for a in actions {
            match a {
                Action::SetServingRxBeam(b) => {
                    self.trace
                        .record(now, TraceLevel::Info, format!("S-RBA switch -> {b}"));
                }
                Action::SetGapRxBeam(_) => {}
                Action::SendToServing(pdu) => {
                    let serving = self.serving;
                    self.send_to_bs(ex, now, serving, pdu);
                }
                Action::SearchFailed { dwells_used } => {
                    self.outcome.search_passes.push(SearchPass {
                        dwells: dwells_used,
                        succeeded: false,
                        ended_at: now,
                    });
                    self.pass_dwell_mark = self.proto.search_dwells();
                    self.trace.record(
                        now,
                        TraceLevel::Warn,
                        format!("search pass failed after {dwells_used} dwells"),
                    );
                }
                Action::NeighborAcquired(d) => {
                    let total = self.proto.search_dwells();
                    let dwells = (total - self.pass_dwell_mark) as usize;
                    self.pass_dwell_mark = total;
                    self.outcome.search_passes.push(SearchPass {
                        dwells,
                        succeeded: true,
                        ended_at: now,
                    });
                    if self.outcome.acquired_at.is_none() {
                        self.outcome.acquired_at = Some(now);
                    }
                    self.trace.record(
                        now,
                        TraceLevel::Info,
                        format!(
                            "acquired {} tx{} on rx {} at {}",
                            d.cell, d.tx_beam, d.rx_beam, d.rss
                        ),
                    );
                }
                Action::ExecuteHandover(directive) => self.start_rach(ex, now, directive),
            }
        }
    }

    fn start_rach(&mut self, ex: &mut Executive<Ev>, now: SimTime, d: HandoverDirective) {
        if self.rach.is_some() {
            return;
        }
        self.outcome.handover_triggered_at = Some(now);
        self.outcome.handover_reason = Some(d.reason);
        self.handover_reason = Some(d.reason);
        let token = match self.cfg.protocol {
            ProtocolKind::SilentTracker => CONTEXT_TOKEN,
            ProtocolKind::Reactive => 0,
        };
        let target = d.target.0 as usize;
        let proc = RachProcedure::new(self.cfg.rach, UE, token);
        let ssb = self.cfg.ssb(target);
        let at = self.cfg.prach.next_occasion(&ssb, now, d.ssb_beam);
        self.rach = Some(RachExec {
            target,
            ssb_beam: d.ssb_beam,
            rx_beam: d.rx_beam,
            proc,
            try_pending: true,
        });
        ex.schedule_at(at, Ev::RachTry);
        self.trace.record(
            now,
            TraceLevel::Info,
            format!(
                "handover trigger ({:?}) -> cell{} ssb{} rx {}",
                d.reason, target, d.ssb_beam, d.rx_beam
            ),
        );
    }
}
